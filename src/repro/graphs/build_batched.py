"""Vectorized lockstep graph-construction backends.

Every scalar builder in this package (``build_nsw``, ``build_hnsw``,
``build_nsg``, ``build_cagra``) advances one vertex at a time in pure
Python; at tens of thousands of points the numpy dispatch overhead of
those sub-microsecond kernels dominates build wall-clock the same way it
dominated search before the lockstep engine (docs/performance.md).  This
module is the construction-side counterpart: insertion-time beam searches
run batched through :class:`~repro.search.batched.LockstepEngine` against
the *growing* graph (a padded adjacency matrix + degree vector, with an
``n_visible`` prefix mask instead of a per-wave CSR rebuild), and all
linking, degree-capping, and pruning becomes row-parallel array kernels.

Construction semantics per family:

``build_nsw_batched``
    Points insert in doubling waves.  Each wave's insertion searches
    advance in lockstep against the frozen prefix; links are the top-``m``
    discoveries, reverse edges are accumulated with a bucketed scatter and
    trimmed to the degree cap (keep closest) in one padded argsort.  A
    final *refinement pass* re-searches every point against the finished
    graph and merges the fresh top-``m`` links in, recovering the
    candidate quality an incremental build gets from inserting into an
    ever-denser graph.

``build_hnsw_batched``
    Same wave machinery over the flat layer-0 graph (the only layer
    :func:`~repro.graphs.hnsw.build_hnsw` exports), with HNSW's
    diversifying neighbour selection replaced by the batched
    triangle-inequality occlusion prune (:func:`occlusion_prune_mask`) —
    the parallel form of Algorithm 4's heuristic, as used by CAGRA.
    Level draws decide wave entry points (the highest-level vertex of the
    inserted prefix), mirroring the hierarchical descent's role.

``build_nsg_batched``
    All medoid-rooted candidate searches run through the batched engine
    over the kNN substrate; the sequential MRNG occlusion test becomes
    the same chunked triangle-inequality prune; the BFS connectivity
    repair stays on raw adjacency arrays.

``build_cagra_batched``
    Bit-identical to the scalar ``build_cagra`` (asserted by the test
    suite): forward-rank selection, reverse-edge bucketing, and the
    seen-set dedup assembly are expressed as pure array ops
    (stable-argsort first-occurrence masks), so the produced CSR matches
    the scalar oracle byte for byte while the Python per-vertex loops
    disappear.

Scalar builders remain the auditable oracles; each vectorized builder is
reached via the ``build_backend="vectorized"`` switch on the public
``build_*`` functions and is deterministic under a fixed seed.
"""

from __future__ import annotations

import math

import numpy as np

from ..data.metrics import pair_distances, pairwise_distances
from ..parallel import SharedArena, make_pool, resolve_ref
from .base import GraphIndex
from .knn import exact_knn_matrix, nn_descent_matrix
from .utils import medoid

__all__ = [
    "occlusion_prune_mask",
    "build_nsw_batched",
    "build_hnsw_batched",
    "build_nsg_batched",
    "build_cagra_batched",
]

#: Lockstep rows per engine instance: bounds the packed visited bitmap at
#: ``_MAX_ROWS * ceil(n/8)`` bytes while keeping waves fully batched.
_MAX_ROWS = 8192


# --------------------------------------------------------------------------
# row-parallel primitives
# --------------------------------------------------------------------------

def _first_occurrence_mask(ids: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Mask of the first occurrence of each valid id per row (order kept).

    The vectorized form of a per-row ``seen``-set walk: a stable argsort
    groups equal ids, group heads are first occurrences, and a scatter
    puts the mask back in original column order.
    """
    masked = np.where(valid, ids, -1)
    order = np.argsort(masked, axis=1, kind="stable")
    s = np.take_along_axis(masked, order, axis=1)
    first = np.empty(s.shape, dtype=bool)
    first[:, 0] = True
    first[:, 1:] = s[:, 1:] != s[:, :-1]
    first &= s >= 0
    keep = np.zeros(s.shape, dtype=bool)
    np.put_along_axis(keep, order, first, axis=1)
    return keep


def _compact_rows(
    ids: np.ndarray,
    keep: np.ndarray,
    out_k: int,
    extra: np.ndarray | None = None,
    extra_fill: float = np.inf,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """Left-compact up to ``out_k`` kept entries per row, preserving order.

    Returns ``(compacted_ids, compacted_extra, counts)``; ids are -1
    padded past each row's count.
    """
    rank = np.cumsum(keep, axis=1)
    sel = keep & (rank <= out_k)
    rows, cols = np.nonzero(sel)
    pos = rank[rows, cols] - 1
    out = np.full((ids.shape[0], out_k), -1, dtype=ids.dtype)
    out[rows, pos] = ids[rows, cols]
    out_extra = None
    if extra is not None:
        out_extra = np.full((ids.shape[0], out_k), extra_fill, dtype=extra.dtype)
        out_extra[rows, pos] = extra[rows, cols]
    counts = sel.sum(axis=1).astype(np.int64)
    return out, out_extra, counts


def occlusion_prune_mask(
    points: np.ndarray,
    pool_ids: np.ndarray,
    pool_d: np.ndarray,
    metric: str = "l2",
    chunk: int = 256,
    rule: str = "mrng",
    forced: np.ndarray | None = None,
) -> np.ndarray:
    """Chunked triangle-inequality occlusion prune over candidate pools.

    ``pool_ids``/``pool_d`` are ``(B, K)`` candidate lists sorted by
    ascending distance to their row's query vertex, -1 / inf padded.  One
    batched Gram tensor per chunk gives all intra-pool distances at once.

    ``rule="mrng"`` is the exact MRNG / HNSW-Algorithm-4 rule: candidate
    ``c`` (rank j) is occluded when some *kept* earlier candidate ``w``
    satisfies ``d(w, c) < d(q, c)``.  The kept-set dependency makes the
    scan sequential in rank but it stays vectorized across all ``B`` rows
    (K passes over (B, j) slices of the precomputed distance tensor).
    ``rule="detour"`` is CAGRA's relaxation — occlude against *all*
    earlier-ranked candidates, kept or not — which needs no scan but
    prunes strictly more.  Rank 0 is always kept; padding never is.

    ``forced`` (same shape, bool) marks columns that are kept
    unconditionally and occlude later ranks as usual — how the delete
    repair pins a row's surviving edges while diversifying only the
    candidates competing for the freed slots.
    """
    points = np.asarray(points, dtype=np.float32)
    pool_ids = np.asarray(pool_ids)
    B, K = pool_ids.shape
    keep = np.zeros((B, K), dtype=bool)
    tri = np.tril(np.ones((K, K), dtype=bool))  # w >= j: only earlier ranks occlude
    for lo in range(0, B, chunk):
        hi = min(lo + chunk, B)
        ids = pool_ids[lo:hi]
        invalid = ids < 0
        g = points[np.maximum(ids, 0)]  # (c, K, dim); padded rows are garbage, masked below
        if metric == "l2":
            sq = np.einsum("ckd,ckd->ck", g, g)
            gram = np.einsum("ckd,cjd->ckj", g, g)
            pair = sq[:, :, None] + sq[:, None, :] - 2.0 * gram
            np.maximum(pair, 0.0, out=pair)
        else:
            pair = 1.0 - np.einsum("ckd,cjd->ckj", g, g)
        # pair[c, w, j] = d(w_rank_w, c_rank_j); inf where w >= j or w padded.
        pair = np.where(tri[None, :, :] | invalid[:, :, None], np.inf, pair)
        fc = None if forced is None else (forced[lo:hi] & ~invalid)
        if rule == "mrng":
            kc = np.zeros((hi - lo, K), dtype=bool)
            kc[:, 0] = ~invalid[:, 0]
            for j in range(1, K):
                occ = (
                    (pair[:, :j, j] < pool_d[lo:hi, j][:, None]) & kc[:, :j]
                ).any(axis=1)
                kc[:, j] = ~invalid[:, j] & ~occ
                if fc is not None:
                    kc[:, j] |= fc[:, j]
            keep[lo:hi] = kc
        else:
            best_detour = pair.min(axis=1)  # (c, K): cheapest earlier-ranked detour
            keep[lo:hi] = (best_detour >= pool_d[lo:hi]) & ~invalid
            keep[lo:hi, 0] = ~invalid[:, 0]
            if fc is not None:
                keep[lo:hi] |= fc
    return keep


# --------------------------------------------------------------------------
# growing-graph machinery (shared by the NSW-family wave builders)
# --------------------------------------------------------------------------

class _BuildShare:
    """Multi-core state for the wave builders (docs/performance.md).

    Holds a worker pool plus shared-memory mirrors of the build state:
    the (shuffled) corpus is shared once, and the growing adjacency /
    degree arrays are *allocated in* shared memory so the parent's
    between-wave mutations (linking, trimming, repair) are visible to
    workers without any copying.  The wave loop is a strict barrier —
    workers only read during a wave's lockstep searches, the parent only
    writes between waves — so no synchronization beyond ``pool.map`` is
    needed.  Each row's beam search is independent of its chunk-mates,
    which is what makes the fan-out exact: any chunking of the rows
    produces the same pools as the sequential ``_MAX_ROWS`` sweep.
    """

    def __init__(self, points: np.ndarray, parallelism: int, mode: str):
        self.pool = make_pool(parallelism, mode)
        self.arena = SharedArena(enabled=self.pool.is_process)
        self.points_ref = self.arena.share(points)
        self.adj = None
        self.counts = None
        self.adj_ref = None
        self.counts_ref = None

    def alloc_graph(self, n: int, cap: int) -> tuple[np.ndarray, np.ndarray]:
        """Segment-backed (adj, counts) the parent mutates in place."""
        self.adj, self.adj_ref = self.arena.empty((n, cap), np.int64)
        self.counts, self.counts_ref = self.arena.empty((n,), np.int64)
        self.adj.fill(-1)
        self.counts.fill(0)
        return self.adj, self.counts

    def close(self) -> None:
        self.pool.close()
        self.arena.close()

    def __enter__(self) -> "_BuildShare":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _prefix_chunk_task(payload: dict) -> tuple[int, np.ndarray, np.ndarray]:
    """One lockstep chunk of a wave's insertion searches (worker side)."""
    from ..search.batched import LockstepEngine

    points = resolve_ref(payload["points"])
    adj = resolve_ref(payload["adj"])
    counts = resolve_ref(payload["counts"])
    ents = payload["ents"]
    if ents is None:
        ents = np.full((payload["rows"], 1), payload["entry"], dtype=np.int64)
    eng = LockstepEngine(
        points,
        (adj, counts),
        points[payload["lo"] : payload["hi"]],
        np.arange(payload["rows"], dtype=np.int64),
        ents,
        payload["ef"],
        metric=payload["metric"],
        record_trace=False,
        n_visible=payload["visible"],
        alive_mask=payload["alive"],
    )
    eng.run(100 * payload["ef"] + 100, what="batched insertion search")
    ids, dists, _sizes = eng.pools()
    return payload["clo"], ids, dists


def _prefix_search_parallel(
    share: _BuildShare,
    q_lo: int,
    q_hi: int,
    visible: int,
    entry: int,
    ef: int,
    metric: str,
    row_entries: np.ndarray | None,
    alive_mask: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fan one wave's row range over the pool; identical pools to the
    sequential sweep (rows are search-independent), deterministically
    reassembled by chunk offset."""
    W = q_hi - q_lo
    per = max(1, min(_MAX_ROWS, math.ceil(W / share.pool.n_workers)))
    payloads = []
    for clo in range(0, W, per):
        chi = min(W, clo + per)
        payloads.append({
            "points": share.points_ref,
            "adj": share.adj_ref,
            "counts": share.counts_ref,
            "lo": q_lo + clo,
            "hi": q_lo + chi,
            "clo": clo,
            "rows": chi - clo,
            "entry": entry,
            "ents": None if row_entries is None else row_entries[clo:chi],
            "ef": ef,
            "metric": metric,
            "visible": visible,
            "alive": alive_mask,
        })
    out_ids = np.full((W, ef), -1, dtype=np.int64)
    out_d = np.full((W, ef), np.inf, dtype=np.float32)
    for clo, ids, dists in share.pool.map(_prefix_chunk_task, payloads):
        out_ids[clo : clo + ids.shape[0]] = ids
        out_d[clo : clo + ids.shape[0]] = dists
    return out_ids, out_d


def _prefix_search(
    points: np.ndarray,
    q_lo: int,
    q_hi: int,
    visible: int,
    adj: np.ndarray,
    counts: np.ndarray,
    entry: int,
    ef: int,
    metric: str,
    row_entries: np.ndarray | None = None,
    collect_expansions: bool = False,
    alive_mask: np.ndarray | None = None,
    share: _BuildShare | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep beam searches of vertices ``[q_lo, q_hi)`` against the
    inserted prefix ``[0, visible)``; returns (W, ef) pools sorted by
    ascending distance (-1 / inf padded).

    ``share`` fans the row chunks over a worker pool reading the same
    (shared-memory) build state; the pools are identical either way.

    ``row_entries`` optionally gives each row its own ``(W, e)`` entry
    ids (duplicates allowed) instead of the shared ``entry`` — refinement
    sweeps enter at a vertex's existing neighbours, which start the beam
    near convergence.

    With ``collect_expansions`` the returned pools are instead each row's
    *expansion log* (every vertex expanded en route, in expansion order,
    ragged width) — the NSG candidate pool, which needs the search path's
    long-range vertices, not just the final beam.
    """
    from ..search.batched import LockstepEngine

    if share is not None and share.pool.is_parallel and not collect_expansions:
        assert adj is share.adj and counts is share.counts
        return _prefix_search_parallel(
            share, q_lo, q_hi, visible, entry, ef, metric,
            row_entries, alive_mask,
        )
    W = q_hi - q_lo
    out_ids = np.full((W, ef), -1, dtype=np.int64)
    out_d = np.full((W, ef), np.inf, dtype=np.float32)
    chunks: list[tuple[int, np.ndarray, np.ndarray]] = []
    for clo in range(0, W, _MAX_ROWS):
        chi = min(W, clo + _MAX_ROWS)
        B = chi - clo
        if row_entries is None:
            ents = np.full((B, 1), entry, dtype=np.int64)
        else:
            ents = row_entries[clo:chi]
        eng = LockstepEngine(
            points,
            (adj, counts),
            points[q_lo + clo : q_lo + chi],
            np.arange(B, dtype=np.int64),
            ents,
            ef,
            metric=metric,
            record_trace=False,
            n_visible=visible,
            record_expansions=collect_expansions,
            alive_mask=alive_mask,
        )
        eng.run(100 * ef + 100, what="batched insertion search")
        if collect_expansions:
            chunks.append((clo, *eng.expansion_pools()))
        else:
            ids, dists, _sizes = eng.pools()
            out_ids[clo:chi] = ids
            out_d[clo:chi] = dists
    if collect_expansions:
        width = max(c[1].shape[1] for c in chunks)
        out_ids = np.full((W, width), -1, dtype=np.int64)
        out_d = np.full((W, width), np.inf, dtype=np.float32)
        for clo, ids, dists in chunks:
            out_ids[clo : clo + ids.shape[0], : ids.shape[1]] = ids
            out_d[clo : clo + ids.shape[0], : ids.shape[1]] = dists
    return out_ids, out_d


def _select_links(
    points: np.ndarray,
    pool_ids: np.ndarray,
    pool_d: np.ndarray,
    m: int,
    metric: str,
    select: str,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Per-row link selection from sorted candidate pools.

    ``select="closest"`` keeps the ``m`` nearest (NSW); ``"occlusion"``
    keeps the first ``m`` survivors of the triangle-inequality prune
    (HNSW's diversifying heuristic).  ``exclude`` drops one id per row
    (the row's own vertex, for full-graph refinement searches).
    """
    valid = pool_ids >= 0
    if exclude is not None:
        valid &= pool_ids != exclude[:, None]
    if select == "occlusion":
        ids, d, _ = _compact_rows(pool_ids, valid, pool_ids.shape[1], extra=pool_d)
        occ = occlusion_prune_mask(points, ids, d, metric)
        links, _, _ = _compact_rows(ids, occ, m)
        return links
    links, _, _ = _compact_rows(pool_ids, valid, m)
    return links


def _add_links(
    points: np.ndarray,
    adj: np.ndarray,
    counts: np.ndarray,
    targets: np.ndarray,
    srcs: np.ndarray,
    cap: int,
    metric: str,
    trim: str,
    dedup: bool = False,
) -> None:
    """Append directed edges ``target → src`` in bulk, then degree-cap.

    The vectorized form of the scalar append-then-trim loop: edges are
    bucketed per target with one stable argsort, appended after the
    existing neighbours, optionally deduplicated (first occurrence wins,
    matching a ``seen``-set walk), and rows over ``cap`` are trimmed —
    ``trim="closest"`` keeps the ``cap`` nearest (NSW semantics),
    ``trim="occlusion"`` re-runs the diversifying prune over the
    distance-sorted list (HNSW's shrink).
    """
    if targets.size == 0:
        return
    order = np.argsort(targets, kind="stable")
    tv, sv = targets[order], srcs[order]
    uniq, start, cnt_new = np.unique(tv, return_index=True, return_counts=True)
    old_cnt = counts[uniq]
    total = old_cnt + cnt_new
    width = int(total.max())
    U = uniq.size
    ids = np.full((U, width), -1, dtype=np.int64)
    col = np.arange(width)
    w_old = int(old_cnt.max()) if U else 0
    if w_old:
        sub = adj[uniq][:, :w_old]
        m_old = col[:w_old][None, :] < old_cnt[:, None]
        ids[:, :w_old][m_old] = sub[m_old]
    rowi = np.repeat(np.arange(U), cnt_new)
    coli = np.repeat(old_cnt, cnt_new) + (np.arange(tv.size) - np.repeat(start, cnt_new))
    ids[rowi, coli] = sv

    if dedup:
        keep = _first_occurrence_mask(ids, ids >= 0)
        ids, _, total = _compact_rows(ids, keep, width)

    out = np.full((U, cap), -1, dtype=np.int64)
    new_counts = np.minimum(total, cap)
    ovr = total > cap
    nv = ~ovr
    w2 = min(width, cap)
    out[nv, :w2] = ids[nv, :w2]
    if ovr.any():
        ids_o = ids[ovr]
        v_o = uniq[ovr]
        valid_o = ids_o >= 0
        fr, fc = np.nonzero(valid_o)
        d = pair_distances(points[v_o[fr]], points[ids_o[fr, fc]], metric)
        dm = np.full(ids_o.shape, np.inf, dtype=np.float32)
        dm[fr, fc] = d
        osort = np.argsort(dm, axis=1, kind="stable")
        s_ids = np.take_along_axis(ids_o, osort, axis=1)
        if trim == "occlusion":
            s_d = np.take_along_axis(dm, osort, axis=1)
            occ = occlusion_prune_mask(points, s_ids, s_d, metric)
            kept, _, kcnt = _compact_rows(s_ids, occ, cap)
            out[ovr] = kept
            new_counts[ovr] = kcnt
        else:
            out[ovr] = s_ids[:, :cap]
            new_counts[ovr] = cap
    adj[uniq] = out
    counts[uniq] = new_counts


def _seed_block(
    points: np.ndarray,
    w0: int,
    m: int,
    cap: int,
    metric: str,
    select: str,
    adj: np.ndarray,
    counts: np.ndarray,
    entry: int = 0,
) -> None:
    """Exact mutual-kNN linking of the first ``w0`` points (the seed wave a
    beam search cannot serve because the graph is still empty).

    The mutual-kNN seed graph is then *bridged to connectivity* from
    ``entry``: a kNN graph has no connectivity guarantee (in high
    dimension it readily splinters), and every later wave's insertion
    searches can only discover vertices reachable from the entry — a
    fragmented seed silently caps the whole build's recall at the size
    of the entry's component.
    """
    if w0 <= 1:
        return
    d = pairwise_distances(points[:w0], points[:w0], metric)
    np.fill_diagonal(d, np.inf)
    p0 = min(2 * m if select == "occlusion" else m, w0 - 1)
    part = np.argpartition(d, p0 - 1, axis=1)[:, :p0]
    pd = np.take_along_axis(d, part, axis=1)
    o = np.argsort(pd, axis=1, kind="stable")
    pool_ids = np.take_along_axis(part, o, axis=1).astype(np.int64)
    pool_d = np.take_along_axis(pd, o, axis=1).astype(np.float32)
    links = _select_links(points, pool_ids, pool_d, m, metric, select)
    lcnt = (links >= 0).sum(axis=1)
    srcs = np.repeat(np.arange(w0, dtype=np.int64), lcnt)
    tgts = links[links >= 0]
    # Mutual linking: u gains its own links and every vertex that chose it.
    _add_links(
        points, adj, counts,
        np.concatenate([srcs, tgts]), np.concatenate([tgts, srcs]),
        cap, metric, trim="occlusion" if select == "occlusion" else "closest",
        dedup=True,
    )
    _bridge_components(d, adj, counts, cap, entry)


def _bridge_components(
    d: np.ndarray,
    adj: np.ndarray,
    counts: np.ndarray,
    cap: int,
    entry: int,
) -> None:
    """Bidirectionally link components of ``adj[:w0]`` until every vertex
    is reachable from ``entry``, always through the closest
    (unreached, reached) pair.  ``d`` is the seed block's full pairwise
    distance matrix (inf diagonal).  Each bridge may evict a farthest
    link when a side is at capacity; the outer loop re-runs the BFS, so
    an eviction that splits something off is itself repaired."""
    w0 = d.shape[0]
    ids = np.arange(w0)
    while True:
        # Frontier BFS over the padded adjacency restricted to the seed.
        reached = np.zeros(w0, dtype=bool)
        reached[entry] = True
        frontier = np.array([entry], dtype=np.int64)
        while frontier.size:
            nb = adj[frontier]
            valid = np.arange(adj.shape[1])[None, :] < counts[frontier, None]
            valid &= nb < w0
            nxt = np.unique(nb[valid])
            nxt = nxt[~reached[nxt]]
            reached[nxt] = True
            frontier = nxt
        if reached.all():
            return
        un, re = ids[~reached], ids[reached]
        sub = d[np.ix_(un, re)]
        flat = int(np.argmin(sub))
        u = int(un[flat // re.size])
        v = int(re[flat % re.size])
        for a, b in ((u, v), (v, u)):
            row = adj[a, : counts[a]]
            if b in row:
                continue
            if counts[a] < cap:
                adj[a, counts[a]] = b
                counts[a] += 1
            else:
                worst = int(np.argmax(d[a, row]))
                adj[a, worst] = b


def _wave_build(
    points: np.ndarray,
    m: int,
    ef: int,
    cap: int,
    metric: str,
    select: str,
    entry_fn,
    first_wave: int,
    share: _BuildShare | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Doubling-wave batched insertion; returns (adj (n, cap), counts).

    With ``share``, the adjacency lives in shared memory and each wave's
    insertion searches fan across the pool; linking stays in the parent
    (the barrier between waves).
    """
    n = points.shape[0]
    if share is not None:
        adj, counts = share.alloc_graph(n, cap)
    else:
        adj = np.full((n, cap), -1, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
    w0 = min(max(first_wave, m + 1), n)
    _seed_block(points, w0, m, cap, metric, select, adj, counts,
                entry=entry_fn(w0))
    trim = "occlusion" if select == "occlusion" else "closest"
    lo = w0
    while lo < n:
        hi = min(n, 2 * lo)
        pool_ids, pool_d = _prefix_search(
            points, lo, hi, lo, adj, counts, entry_fn(lo), ef, metric,
            share=share,
        )
        links = _select_links(points, pool_ids, pool_d, m, metric, select)
        lcnt = (links >= 0).sum(axis=1)
        adj[lo:hi, : links.shape[1]] = links
        counts[lo:hi] = lcnt
        srcs = np.repeat(np.arange(lo, hi, dtype=np.int64), lcnt)
        _add_links(points, adj, counts, links[links >= 0], srcs, cap, metric, trim)
        lo = hi
    return adj, counts


def _repair_connectivity(
    points: np.ndarray,
    adj: np.ndarray,
    counts: np.ndarray,
    cap: int,
    metric: str,
    entry: int,
    max_rounds: int = 10,
) -> None:
    """Make every vertex reachable from ``entry`` (padded-adjacency form
    of the NSG repair).  Wave insertion keeps new points connected to the
    prefix, but the keep-closest degree trim evicts links wholesale when
    late waves bombard the prefix with reverse edges — on the high-dim
    corpora a few percent of vertices end up unreachable, a hard recall
    cap for any search entering at ``entry``.  Each round BFSes from the
    entry, then attaches every unreached vertex to its nearest reached
    vertex (append when there is spare capacity, else replace that
    anchor's farthest link); attachment-induced evictions are repaired by
    the next round."""
    n = counts.size
    col = np.arange(adj.shape[1])
    for _ in range(max_rounds):
        reached = np.zeros(n, dtype=bool)
        reached[entry] = True
        frontier = np.array([entry], dtype=np.int64)
        while frontier.size:
            nb = adj[frontier]
            nxt = np.unique(nb[col[None, :] < counts[frontier, None]])
            nxt = nxt[~reached[nxt]]
            reached[nxt] = True
            frontier = nxt
        un = np.flatnonzero(~reached)
        if un.size == 0:
            return
        re = np.flatnonzero(reached)
        # Nearest reached anchor per unreached vertex — one blocked GEMM.
        anchors = np.empty(un.size, dtype=np.int64)
        for lo in range(0, un.size, 1024):
            hi = min(un.size, lo + 1024)
            d = pairwise_distances(points[un[lo:hi]], points[re], metric)
            anchors[lo:hi] = re[np.argmin(d, axis=1)]
        for v, a in zip(un.tolist(), anchors.tolist()):
            row = adj[a, : counts[a]]
            if v in row:
                continue
            if counts[a] < cap:
                adj[a, counts[a]] = v
                counts[a] += 1
            else:
                dd = pair_distances(
                    np.broadcast_to(points[a], (int(counts[a]), points.shape[1])),
                    points[row], metric,
                )
                adj[a, int(np.argmax(dd))] = v


def _refine_pass(
    points: np.ndarray,
    adj: np.ndarray,
    counts: np.ndarray,
    m: int,
    ef: int,
    cap: int,
    metric: str,
    entry: int,
    select: str,
    frac: float = 1.0,
    share: _BuildShare | None = None,
) -> None:
    """Re-insertion sweep: re-search vertices against the finished graph
    and merge the fresh top-``m`` links (plus their reverses) into the
    adjacency, keep-closest capped.  Recovers the link quality incremental
    builds get from late insertions seeing a dense graph.  Each vertex's
    sweep enters at its own current neighbours (the beam starts adjacent
    to its target instead of walking in from a global entry), which cuts
    the lockstep step count by more than half.  ``frac < 1`` refines only
    the earliest-inserted prefix — the vertices whose insertion searches
    saw the sparsest graph and so have the weakest links."""
    n = points.shape[0]
    W = n if frac >= 1.0 else max(int(n * frac), 1)
    e1 = np.where(counts[:W] > 0, adj[:W, 0], entry)
    e2 = np.where(counts[:W] > 1, adj[:W, 1], e1)
    row_entries = np.stack([e1, e2], axis=1)
    pool_ids, pool_d = _prefix_search(
        points, 0, W, n, adj, counts, entry, ef, metric,
        row_entries=row_entries, share=share,
    )
    links = _select_links(
        points, pool_ids, pool_d, m, metric, select,
        exclude=np.arange(W, dtype=np.int64),
    )
    lcnt = (links >= 0).sum(axis=1)
    srcs = np.repeat(np.arange(W, dtype=np.int64), lcnt)
    tgts = links[links >= 0]
    trim = "occlusion" if select == "occlusion" else "closest"
    _add_links(
        points, adj, counts,
        np.concatenate([srcs, tgts]), np.concatenate([tgts, srcs]),
        cap, metric, trim, dedup=True,
    )


def _csr_from_padded(
    adj: np.ndarray, counts: np.ndarray, kind: str, remap: np.ndarray | None = None
) -> GraphIndex:
    """Assemble the CSR directly from the padded adjacency (no per-vertex
    Python loop).  ``remap`` maps build-order ids back to original ids."""
    n = adj.shape[0]
    if remap is None:
        rows = adj
        cnt = counts
        ids_of = None
    else:
        inv = np.empty(n, dtype=np.int64)
        inv[remap] = np.arange(n)
        rows = adj[inv]
        cnt = counts[inv]
        ids_of = remap
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cnt, out=indptr[1:])
    mask = np.arange(adj.shape[1])[None, :] < cnt[:, None]
    flat = rows[mask]
    indices = (ids_of[flat] if ids_of is not None else flat).astype(np.int32)
    return GraphIndex(indptr, indices, kind=kind)


# --------------------------------------------------------------------------
# NSW
# --------------------------------------------------------------------------

def build_nsw_batched(
    points: np.ndarray,
    m: int = 16,
    ef_construction: int = 64,
    metric: str = "l2",
    max_degree: int | None = None,
    seed: int = 0,
    first_wave: int = 256,
    refine_passes: int = 1,
    refine_frac: float | None = None,
    parallelism: int = 0,
    parallel_mode: str = "process",
) -> GraphIndex:
    """Wave-batched NSW build (vectorized backend of ``build_nsw``).

    ``parallelism > 1`` fans each wave's (and each refinement sweep's)
    insertion searches across worker processes over a shared-memory
    mirror of the growing graph; the produced CSR is identical at any
    worker count (rows are search-independent, linking stays serial).

    Budget policy: the per-wave insertion searches run at a reduced beam
    (``5/8·ef_construction``) and the saved budget funds a refinement
    sweep at the full ``ef_construction`` over the earliest-inserted
    ``refine_frac`` of the vertices — the ones whose insertion searches
    saw the sparsest prefix.  ``refine_frac=None`` resolves adaptively:
    small builds (``n <= 8192``) refine everything (the sweep is cheap
    and wave searches saw at best a half-built graph), large builds
    refine the earliest half.  On the mini corpora this lands above the
    scalar build's recall at a fraction of its wall-clock.
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    cap = max_degree or 2 * m
    if refine_frac is None:
        refine_frac = 1.0 if n <= _MAX_ROWS else 0.5
    wave_ef = max(m + 2, (5 * ef_construction) // 8)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)  # same insertion order as the scalar build
    shuffled = np.ascontiguousarray(points[order])
    share = (_BuildShare(shuffled, parallelism, parallel_mode)
             if parallelism and parallelism > 1 else None)
    try:
        adj, counts = _wave_build(
            shuffled, m, wave_ef, cap, metric, "closest",
            entry_fn=lambda lo: 0, first_wave=first_wave, share=share,
        )
        _repair_connectivity(shuffled, adj, counts, cap, metric, 0)
        for _ in range(max(refine_passes, 0)):
            _refine_pass(shuffled, adj, counts, m, ef_construction, cap, metric,
                         0, "closest", frac=refine_frac, share=share)
        _repair_connectivity(shuffled, adj, counts, cap, metric, 0)
        return _csr_from_padded(adj, counts, "nsw", remap=order)
    finally:
        if share is not None:
            share.close()


# --------------------------------------------------------------------------
# HNSW (flat layer-0 export)
# --------------------------------------------------------------------------

def build_hnsw_batched(
    points: np.ndarray,
    m: int = 12,
    ef_construction: int = 64,
    metric: str = "l2",
    ml: float | None = None,
    seed: int = 0,
    first_wave: int = 256,
    refine_passes: int = 1,
    refine_frac: float | None = None,
    parallelism: int = 0,
    parallel_mode: str = "process",
) -> GraphIndex:
    """Wave-batched flat HNSW layer-0 build (vectorized ``build_hnsw``).

    ``build_hnsw`` exports only layer 0 (every point lives there); the
    upper layers' sole effect on that export is routing insertion
    searches.  The batched build reproduces that role with level draws:
    each wave's searches enter at the highest-level vertex of the
    inserted prefix.  Neighbour selection and the shrink-on-overflow both
    use the batched occlusion prune (the parallel Algorithm-4 heuristic).
    The beam budget is gentler than NSW's: occlusion-pruned graphs keep
    far fewer links per insertion, so starving the waves (NSW's 5/8 cut)
    visibly costs recall — HNSW waves run at ``7/8·ef_construction``
    once the build is large enough to amortize it (``n > 8192``; small
    builds keep the full beam), and the full-beam refinement sweep
    covers the earliest ``refine_frac`` (``None`` = everything for small
    builds, the earliest 3/4 past ``n=8192``).
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    cap = 2 * m  # layer-0 degree cap, per the paper
    if refine_frac is None:
        refine_frac = 1.0 if n <= _MAX_ROWS else 0.75
    wave_ef = ef_construction if n <= _MAX_ROWS else max(
        m + 2, (7 * ef_construction) // 8
    )
    ml = ml if ml is not None else 1.0 / math.log(m)
    rng = np.random.default_rng(seed)
    levels = np.floor(
        -np.log(np.maximum(rng.random(n), 1e-12)) * ml
    ).astype(np.int64)

    def entry_fn(lo: int) -> int:
        return int(np.argmax(levels[:lo]))

    share = (_BuildShare(points, parallelism, parallel_mode)
             if parallelism and parallelism > 1 else None)
    try:
        adj, counts = _wave_build(
            points, m, wave_ef, cap, metric, "occlusion",
            entry_fn=entry_fn, first_wave=first_wave, share=share,
        )
        _repair_connectivity(points, adj, counts, cap, metric, entry_fn(n))
        for _ in range(max(refine_passes, 0)):
            _refine_pass(
                points, adj, counts, m, ef_construction, cap, metric,
                entry_fn(n), "occlusion", frac=refine_frac, share=share,
            )
        _repair_connectivity(points, adj, counts, cap, metric, entry_fn(n))
        return _csr_from_padded(adj, counts, "hnsw-l0")
    finally:
        if share is not None:
            share.close()


# --------------------------------------------------------------------------
# NSG
# --------------------------------------------------------------------------

def build_nsg_batched(
    points: np.ndarray,
    out_degree: int = 16,
    knn_k: int | None = None,
    search_l: int = 48,
    metric: str = "l2",
    seed: int = 0,
) -> GraphIndex:
    """Batched NSG build (vectorized backend of ``build_nsg``)."""
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    knn_k = knn_k or 2 * out_degree
    knn_ids, knn_d = exact_knn_matrix(points, min(knn_k, n - 1), metric)
    nav = medoid(points, metric, seed=seed)
    substrate = GraphIndex.from_matrix(knn_ids, kind="knn")
    nbr_mat, degs = substrate.neighbor_matrix()
    nbr_mat = np.ascontiguousarray(nbr_mat)  # writable view not needed; engine reads

    adj = np.full((n, out_degree), -1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    rows_all = np.arange(n, dtype=np.int64)
    for lo in range(0, n, _MAX_ROWS):
        hi = min(n, lo + _MAX_ROWS)
        # Pool = kNN row ∪ the search *path* from the navigating node
        # (every expanded vertex, matching the scalar build) — the path's
        # long-range vertices are what make NSG navigable from its fixed
        # entry; the final beam alone is too local and recall collapses.
        pool_s, pool_sd = _prefix_search(
            points, lo, hi, n, nbr_mat, degs, nav, search_l, metric,
            collect_expansions=True,
        )
        pool_ids = np.concatenate([knn_ids[lo:hi].astype(np.int64), pool_s], axis=1)
        pool_d = np.concatenate([knn_d[lo:hi], pool_sd], axis=1)
        o = np.argsort(pool_d, axis=1, kind="stable")
        pool_ids = np.take_along_axis(pool_ids, o, axis=1)
        pool_d = np.take_along_axis(pool_d, o, axis=1)
        valid = (pool_ids >= 0) & (pool_ids != rows_all[lo:hi, None])
        valid &= _first_occurrence_mask(pool_ids, valid)
        cids, cd, _ = _compact_rows(pool_ids, valid, pool_ids.shape[1], extra=pool_d)
        occ = occlusion_prune_mask(points, cids, cd, metric)
        links, _, lcnt = _compact_rows(cids, occ, out_degree)
        adj[lo:hi] = links
        counts[lo:hi] = lcnt

    _nsg_repair(points, adj, counts, nav, out_degree, metric)
    return _csr_from_padded(adj, counts, "nsg")


def _bfs_seen(adj: np.ndarray, nav: int) -> np.ndarray:
    """Vectorized BFS over a -1-padded adjacency matrix; returns the
    reachable-from-``nav`` mask."""
    n = adj.shape[0]
    seen = np.zeros(n, dtype=bool)
    seen[nav] = True
    frontier = np.array([nav], dtype=np.int64)
    while frontier.size:
        nb = adj[frontier]
        nb = nb[nb >= 0]
        if nb.size == 0:
            break
        nb = np.unique(nb)
        fresh = nb[~seen[nb]]
        seen[fresh] = True
        frontier = fresh
    return seen


def _nsg_repair(
    points: np.ndarray,
    adj: np.ndarray,
    counts: np.ndarray,
    nav: int,
    out_degree: int,
    metric: str,
) -> None:
    """BFS connectivity repair from the navigating node, on raw arrays.

    Same semantics as the scalar repair: unreachable vertices attach to
    their nearest reachable vertex, preferring anchors with spare capacity
    (append-only attachment cannot disconnect a subtree the way edge
    replacement can), with the BFS+attach cycle iterated to a fixpoint.
    """
    for _ in range(10):
        seen = _bfs_seen(adj, nav)
        unreached = np.flatnonzero(~seen)
        if unreached.size == 0:
            return
        reach = np.flatnonzero(seen)
        for blo in range(0, unreached.size, 1024):
            bhi = min(unreached.size, blo + 1024)
            block = unreached[blo:bhi]
            d = pairwise_distances(points[block], points[reach], metric)
            order = np.argsort(d, axis=1, kind="stable")
            for row, v in enumerate(block.tolist()):
                anchor = None
                for i in order[row]:
                    a = int(reach[i])
                    if counts[a] < out_degree:
                        anchor = a
                        break
                if anchor is not None:
                    adj[anchor, counts[anchor]] = v
                    counts[anchor] += 1
                else:
                    adj[int(reach[order[row, 0]]), out_degree - 1] = v


# --------------------------------------------------------------------------
# CAGRA (bit-identical to the scalar oracle)
# --------------------------------------------------------------------------

def build_cagra_batched(
    points: np.ndarray,
    graph_degree: int = 32,
    intermediate_degree: int | None = None,
    metric: str = "l2",
    use_nn_descent: bool = False,
    chunk: int = 256,
    seed: int = 0,
) -> GraphIndex:
    """Array-op CAGRA graph optimization (vectorized ``build_cagra``).

    Produces the *same CSR byte for byte* as the scalar builder: the
    forward-rank selection, reverse-edge rank ordering, and the seen-set
    dedup assembly are replayed with stable sorts and first-occurrence
    masks instead of per-vertex Python loops.
    """
    from .cagra import prune_detours

    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    inter = intermediate_degree or 2 * graph_degree
    inter = min(inter, n - 1)
    if use_nn_descent:
        cand_ids, cand_d = nn_descent_matrix(
            points, inter, metric, seed=seed, backend="vectorized"
        )
    else:
        cand_ids, cand_d = exact_knn_matrix(points, inter, metric)
    cand_ids = cand_ids.astype(np.int64)

    keep_mask = prune_detours(points, cand_ids, cand_d, metric, chunk=chunk)

    # Strong (unpruned) forward edges first, in rank order.
    d_half = graph_degree // 2
    t = max(d_half, 1)
    korder = np.argsort(~keep_mask, axis=1, kind="stable")
    kept_ids = np.take_along_axis(cand_ids, korder, axis=1)
    kept_cnt = keep_mask.sum(axis=1).astype(np.int64)
    tcol = np.arange(t)
    fwd = np.where(
        tcol[None, :] < np.minimum(kept_cnt, t)[:, None], kept_ids[:, :t], -1
    )

    # Reverse edges, bucketed per destination and ordered by (forward
    # rank, source id) — the scalar ``sorted(rev_lists[u])`` order.
    src, kcol = np.nonzero(keep_mask)
    rank = (np.cumsum(keep_mask, axis=1) - 1)[src, kcol]
    dst = cand_ids[src, kcol]
    o = np.lexsort((src, rank, dst))
    dst_s, src_s = dst[o], src[o]
    cnt_rev = np.bincount(dst_s, minlength=n)
    maxrev = int(cnt_rev.max()) if dst_s.size else 0
    rev = np.full((n, maxrev), -1, dtype=np.int64)
    if dst_s.size:
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(cnt_rev[:-1], out=starts[1:])
        rev[dst_s, np.arange(dst_s.size) - starts[dst_s]] = src_s

    # Assembly: forward, then reverse, then intermediate-candidate
    # padding; first occurrence wins (the scalar seen-set), self excluded
    # exactly where the scalar excludes it.
    rows_idx = np.arange(n, dtype=np.int64)[:, None]
    prio = np.concatenate([fwd, rev, cand_ids], axis=1)
    valid = np.concatenate(
        [
            fwd >= 0,
            (rev >= 0) & (rev != rows_idx),
            cand_ids != rows_idx,
        ],
        axis=1,
    )
    keep = _first_occurrence_mask(prio, valid)
    out, _, _ = _compact_rows(prio, keep, graph_degree)
    return GraphIndex.from_matrix(out.astype(np.int32), kind="cagra")
