"""Graph diagnostics: degree statistics, connectivity, entry points."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from ..data.metrics import query_distances
from .base import GraphIndex

__all__ = ["GraphStats", "graph_stats", "reachable_fraction", "medoid"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for a graph index."""

    n_vertices: int
    n_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    n_weak_components: int
    n_strong_components: int

    @property
    def is_weakly_connected(self) -> bool:
        return self.n_weak_components == 1


def _to_scipy(graph: GraphIndex) -> csr_matrix:
    data = np.ones(graph.n_edges, dtype=np.int8)
    return csr_matrix(
        (data, graph.indices, graph.indptr), shape=(graph.n_vertices, graph.n_vertices)
    )


def graph_stats(graph: GraphIndex) -> GraphStats:
    """Compute degree and connectivity statistics."""
    deg = graph.degrees
    mat = _to_scipy(graph)
    n_weak, _ = connected_components(mat, directed=True, connection="weak")
    n_strong, _ = connected_components(mat, directed=True, connection="strong")
    return GraphStats(
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        min_degree=int(deg.min()) if deg.size else 0,
        max_degree=int(deg.max()) if deg.size else 0,
        mean_degree=float(deg.mean()) if deg.size else 0.0,
        n_weak_components=int(n_weak),
        n_strong_components=int(n_strong),
    )


def reachable_fraction(graph: GraphIndex, entry: int) -> float:
    """Fraction of vertices reachable from ``entry`` by directed BFS.

    Greedy search can only ever return reachable vertices, so this bounds
    attainable recall for a single fixed entry point.
    """
    n = graph.n_vertices
    if not 0 <= entry < n:
        raise ValueError("entry out of range")
    seen = np.zeros(n, dtype=bool)
    seen[entry] = True
    frontier = np.array([entry], dtype=np.int64)
    while frontier.size:
        nxt: list[np.ndarray] = []
        for v in frontier:
            nb = graph.neighbors(int(v))
            fresh = nb[~seen[nb]]
            if fresh.size:
                seen[fresh] = True
                nxt.append(fresh.astype(np.int64))
        frontier = np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
    return float(seen.mean())


def medoid(points: np.ndarray, metric: str = "l2", sample: int = 2048, seed: int = 0) -> int:
    """Approximate medoid: the point closest to the (sampled) centroid.

    A natural fixed entry point for greedy search (used by DiskANN and by
    our single-CTA kernels when no random entries are requested).
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=min(sample, n), replace=False)
    center = points[idx].mean(axis=0)
    d = query_distances(center, points, metric)
    return int(np.argmin(d))
