"""k-NN graph construction.

The exact builder is the substrate for the CAGRA graph (CAGRA starts from a
k-NN graph and optimizes it) and a strong ANN baseline graph in its own
right.  ``nn_descent`` provides the approximate alternative used when the
quadratic exact build is too expensive.
"""

from __future__ import annotations

import numpy as np

from ..data.metrics import pairwise_distances
from .base import GraphIndex

__all__ = ["exact_knn_matrix", "exact_knn_graph", "nn_descent_matrix", "nn_descent_graph"]


def exact_knn_matrix(
    points: np.ndarray,
    k: int,
    metric: str = "l2",
    block: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(n, k)`` neighbour matrix (self excluded), plus distances.

    Blocked brute force: each block computes a ``(b, n)`` distance panel
    (one GEMM via the L2 expansion) and reduces it with ``argpartition``
    before the next panel is materialized, so memory stays ``O(b·n)``.
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    if not 0 < k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    nbrs = np.empty((n, k), dtype=np.int32)
    dists = np.empty((n, k), dtype=np.float32)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        d = pairwise_distances(points[lo:hi], points, metric)
        # exclude self-matches
        d[np.arange(hi - lo), np.arange(lo, hi)] = np.inf
        part = np.argpartition(d, k - 1, axis=1)[:, :k]
        pd = np.take_along_axis(d, part, axis=1)
        order = np.argsort(pd, axis=1, kind="stable")
        nbrs[lo:hi] = np.take_along_axis(part, order, axis=1)
        dists[lo:hi] = np.take_along_axis(pd, order, axis=1)
    return nbrs, dists


def exact_knn_graph(points: np.ndarray, k: int, metric: str = "l2", block: int = 512) -> GraphIndex:
    """Exact k-NN graph as a :class:`GraphIndex`."""
    nbrs, _ = exact_knn_matrix(points, k, metric, block)
    return GraphIndex.from_matrix(nbrs, kind="knn")


def nn_descent_matrix(
    points: np.ndarray,
    k: int,
    metric: str = "l2",
    n_iters: int = 8,
    sample: int = 12,
    seed: int = 0,
    tol: float = 0.001,
    backend: str = "scalar",
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate k-NN via NN-descent (Dong et al.).

    Each iteration joins every point against a sample of its neighbours'
    neighbours and keeps the k best.  Converges to >0.9 recall k-NN graphs
    in a handful of iterations on clustered data; used when ``n`` makes the
    exact quadratic build unattractive.

    ``backend`` selects the per-row deduplication kernel: ``"scalar"`` is
    the original per-row ``np.unique`` loop, ``"vectorized"`` replays the
    identical first-occurrence semantics with one stable argsort over the
    whole merge matrix (bit-identical output, no Python loop — this loop
    is the dominant cost of the scalar build at n=20k).
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    if not 0 < k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    if backend not in ("scalar", "vectorized"):
        raise ValueError(f"unknown backend {backend!r}")
    rng = np.random.default_rng(seed)
    # Random initialization (ids distinct from self).
    nbrs = rng.integers(0, n - 1, size=(n, k), dtype=np.int64)
    nbrs += nbrs >= np.arange(n)[:, None]  # shift to skip self
    dists = _rowwise_distances(points, nbrs, metric)
    order = np.argsort(dists, axis=1, kind="stable")
    nbrs = np.take_along_axis(nbrs, order, axis=1)
    dists = np.take_along_axis(dists, order, axis=1)
    for _ in range(n_iters):
        s = min(sample, k)
        picks = nbrs[:, rng.permutation(k)[:s]]  # (n, s) sampled neighbours
        # neighbours-of-neighbours: gather each pick's own sampled list
        cand = nbrs[picks.ravel()][:, :s].reshape(n, s * s)
        cand = np.concatenate([cand, picks], axis=1)
        new_d = _rowwise_distances(points, cand, metric)
        new_d[cand == np.arange(n)[:, None]] = np.inf
        merged_ids = np.concatenate([nbrs, cand], axis=1)
        merged_d = np.concatenate([dists, new_d], axis=1)
        # Deduplicate per row: keep best distance occurrence.
        sort_idx = np.argsort(merged_d, axis=1, kind="stable")
        merged_ids = np.take_along_axis(merged_ids, sort_idx, axis=1)
        merged_d = np.take_along_axis(merged_d, sort_idx, axis=1)
        if backend == "vectorized":
            nbrs, dists, updated = _dedup_update_vectorized(
                nbrs, dists, merged_ids, merged_d, k
            )
        else:
            updated = 0
            for i in range(n):
                row_ids, first = np.unique(merged_ids[i], return_index=True)
                first.sort()
                keep = first[:k]
                new_row = merged_ids[i, keep]
                if not np.array_equal(np.sort(new_row), np.sort(nbrs[i])):
                    updated += 1
                nbrs[i, : keep.size] = new_row
                dists[i, : keep.size] = merged_d[i, keep]
        if updated / n < tol:
            break
    return nbrs.astype(np.int32), dists


def _dedup_update_vectorized(
    nbrs: np.ndarray,
    dists: np.ndarray,
    merged_ids: np.ndarray,
    merged_d: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Row-parallel first-occurrence dedup + top-k update.

    Exact replay of the scalar per-row ``np.unique`` walk: rows are
    already distance-sorted, so the first occurrence of each id in
    column order is its best-distance occurrence; the first ``k`` such
    columns overwrite the leading slots (trailing slots keep their old
    values when a row has fewer than ``k`` distinct ids, as the scalar
    partial write does).  A row counts as updated when its sorted new id
    set differs from the old one — which a short row always does.
    """
    from .build_batched import _first_occurrence_mask

    first = _first_occurrence_mask(merged_ids, np.ones(merged_ids.shape, dtype=bool))
    rank = np.cumsum(first, axis=1)
    sel = first & (rank <= k)
    cnt = sel.sum(axis=1)
    rows, cols = np.nonzero(sel)
    pos = rank[rows, cols] - 1
    sorted_old = np.sort(nbrs, axis=1)
    new_ids = nbrs.copy()
    new_d = dists.copy()
    new_ids[rows, pos] = merged_ids[rows, cols]
    new_d[rows, pos] = merged_d[rows, cols]
    short = cnt < k
    updated = int(short.sum())
    full = ~short
    if full.any():
        diff = np.any(np.sort(new_ids[full], axis=1) != sorted_old[full], axis=1)
        updated += int(diff.sum())
    return new_ids, new_d, updated


def nn_descent_graph(
    points: np.ndarray, k: int, metric: str = "l2", **kw
) -> GraphIndex:
    """Approximate k-NN graph as a :class:`GraphIndex`."""
    nbrs, _ = nn_descent_matrix(points, k, metric, **kw)
    return GraphIndex.from_matrix(nbrs, kind="knn-approx")


def _rowwise_distances(
    points: np.ndarray, ids: np.ndarray, metric: str, block: int = 1024
) -> np.ndarray:
    """Distances from point ``i`` to each of ``ids[i]`` (vectorized gather).

    Blocked over rows so the ``(block, m, dim)`` gather and diff stay
    cache-sized instead of materializing an ``(n, m, dim)`` tensor; each
    row's arithmetic is unchanged, so the output is bit-identical to the
    unblocked form.
    """
    n, m = ids.shape
    out = np.empty((n, m), dtype=np.float32)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        gathered = points[ids[lo:hi]]  # (b, m, dim)
        if metric == "l2":
            diff = gathered - points[lo:hi, None, :]
            out[lo:hi] = np.einsum("nmd,nmd->nm", diff, diff)
        else:
            out[lo:hi] = 1.0 - np.einsum("nmd,nd->nm", gathered, points[lo:hi])
    return out
