"""k-NN graph construction.

The exact builder is the substrate for the CAGRA graph (CAGRA starts from a
k-NN graph and optimizes it) and a strong ANN baseline graph in its own
right.  ``nn_descent`` provides the approximate alternative used when the
quadratic exact build is too expensive.
"""

from __future__ import annotations

import numpy as np

from ..data.metrics import pairwise_distances
from .base import GraphIndex

__all__ = ["exact_knn_matrix", "exact_knn_graph", "nn_descent_matrix", "nn_descent_graph"]


def exact_knn_matrix(
    points: np.ndarray,
    k: int,
    metric: str = "l2",
    block: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(n, k)`` neighbour matrix (self excluded), plus distances.

    Blocked brute force: each block computes a ``(b, n)`` distance panel
    (one GEMM via the L2 expansion) and reduces it with ``argpartition``
    before the next panel is materialized, so memory stays ``O(b·n)``.
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    if not 0 < k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    nbrs = np.empty((n, k), dtype=np.int32)
    dists = np.empty((n, k), dtype=np.float32)
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        d = pairwise_distances(points[lo:hi], points, metric)
        # exclude self-matches
        d[np.arange(hi - lo), np.arange(lo, hi)] = np.inf
        part = np.argpartition(d, k - 1, axis=1)[:, :k]
        pd = np.take_along_axis(d, part, axis=1)
        order = np.argsort(pd, axis=1, kind="stable")
        nbrs[lo:hi] = np.take_along_axis(part, order, axis=1)
        dists[lo:hi] = np.take_along_axis(pd, order, axis=1)
    return nbrs, dists


def exact_knn_graph(points: np.ndarray, k: int, metric: str = "l2", block: int = 512) -> GraphIndex:
    """Exact k-NN graph as a :class:`GraphIndex`."""
    nbrs, _ = exact_knn_matrix(points, k, metric, block)
    return GraphIndex.from_matrix(nbrs, kind="knn")


def nn_descent_matrix(
    points: np.ndarray,
    k: int,
    metric: str = "l2",
    n_iters: int = 8,
    sample: int = 12,
    seed: int = 0,
    tol: float = 0.001,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate k-NN via NN-descent (Dong et al.), vectorized.

    Each iteration joins every point against a sample of its neighbours'
    neighbours and keeps the k best.  Converges to >0.9 recall k-NN graphs
    in a handful of iterations on clustered data; used when ``n`` makes the
    exact quadratic build unattractive.
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    if not 0 < k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    rng = np.random.default_rng(seed)
    # Random initialization (ids distinct from self).
    nbrs = rng.integers(0, n - 1, size=(n, k), dtype=np.int64)
    nbrs += nbrs >= np.arange(n)[:, None]  # shift to skip self
    dists = _rowwise_distances(points, nbrs, metric)
    order = np.argsort(dists, axis=1, kind="stable")
    nbrs = np.take_along_axis(nbrs, order, axis=1)
    dists = np.take_along_axis(dists, order, axis=1)
    for _ in range(n_iters):
        s = min(sample, k)
        picks = nbrs[:, rng.permutation(k)[:s]]  # (n, s) sampled neighbours
        # neighbours-of-neighbours: gather each pick's own sampled list
        cand = nbrs[picks.ravel()][:, :s].reshape(n, s * s)
        cand = np.concatenate([cand, picks], axis=1)
        new_d = _rowwise_distances(points, cand, metric)
        new_d[cand == np.arange(n)[:, None]] = np.inf
        merged_ids = np.concatenate([nbrs, cand], axis=1)
        merged_d = np.concatenate([dists, new_d], axis=1)
        # Deduplicate per row: keep best distance occurrence.
        sort_idx = np.argsort(merged_d, axis=1, kind="stable")
        merged_ids = np.take_along_axis(merged_ids, sort_idx, axis=1)
        merged_d = np.take_along_axis(merged_d, sort_idx, axis=1)
        updated = 0
        for i in range(n):
            row_ids, first = np.unique(merged_ids[i], return_index=True)
            first.sort()
            keep = first[:k]
            new_row = merged_ids[i, keep]
            if not np.array_equal(np.sort(new_row), np.sort(nbrs[i])):
                updated += 1
            nbrs[i, : keep.size] = new_row
            dists[i, : keep.size] = merged_d[i, keep]
        if updated / n < tol:
            break
    return nbrs.astype(np.int32), dists


def nn_descent_graph(
    points: np.ndarray, k: int, metric: str = "l2", **kw
) -> GraphIndex:
    """Approximate k-NN graph as a :class:`GraphIndex`."""
    nbrs, _ = nn_descent_matrix(points, k, metric, **kw)
    return GraphIndex.from_matrix(nbrs, kind="knn-approx")


def _rowwise_distances(points: np.ndarray, ids: np.ndarray, metric: str) -> np.ndarray:
    """Distances from point ``i`` to each of ``ids[i]`` (vectorized gather)."""
    gathered = points[ids]  # (n, m, dim)
    if metric == "l2":
        diff = gathered - points[:, None, :]
        return np.einsum("nmd,nmd->nm", diff, diff).astype(np.float32)
    return (1.0 - np.einsum("nmd,nd->nm", gathered, points)).astype(np.float32)
