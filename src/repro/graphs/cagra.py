"""CAGRA-style fixed-out-degree graph construction (Ootomo et al., ICDE'24).

CAGRA builds a GPU-friendly graph in two phases:

1. an *intermediate* k-NN graph (here: exact blocked brute force, or
   NN-descent for large n), with per-node candidates sorted by distance;
2. *graph optimization*: detour-based pruning of each node's candidate list
   followed by reverse-edge addition, producing a fixed out-degree ``d``
   (half "strong" forward edges, half reverse edges).

Fixed degree means every search step fetches exactly ``d`` neighbour ids
with one coalesced read — the property the multi-CTA kernels rely on.
"""

from __future__ import annotations

import numpy as np

from ..data.metrics import query_distances
from .base import GraphIndex
from .knn import exact_knn_matrix, nn_descent_matrix

__all__ = ["build_cagra", "prune_detours"]


def build_cagra(
    points: np.ndarray,
    graph_degree: int = 32,
    intermediate_degree: int | None = None,
    metric: str = "l2",
    use_nn_descent: bool = False,
    chunk: int = 256,
    seed: int = 0,
    build_backend: str = "scalar",
) -> GraphIndex:
    """Build a CAGRA graph with out-degree exactly ``graph_degree``.

    ``build_backend="vectorized"`` replays this function's forward-rank /
    reverse-edge / dedup loops as pure array ops
    (:func:`~repro.graphs.build_batched.build_cagra_batched`) and is
    **bit-identical** to the scalar output (asserted by the parity suite);
    with ``use_nn_descent=True`` it also switches the substrate to the
    vectorized NN-descent dedup kernel, which dominates the speedup.
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    if graph_degree <= 0:
        raise ValueError("graph_degree must be positive")
    if n <= graph_degree:
        raise ValueError("need more points than graph_degree")
    if build_backend not in ("scalar", "vectorized"):
        raise ValueError(f"unknown build_backend {build_backend!r}")
    if build_backend == "vectorized":
        from .build_batched import build_cagra_batched

        return build_cagra_batched(
            points, graph_degree, intermediate_degree, metric,
            use_nn_descent, chunk, seed,
        )
    inter = intermediate_degree or 2 * graph_degree
    inter = min(inter, n - 1)
    if use_nn_descent:
        cand_ids, cand_d = nn_descent_matrix(points, inter, metric, seed=seed)
        cand_ids = cand_ids.astype(np.int64)
    else:
        cand_ids, cand_d = exact_knn_matrix(points, inter, metric)
        cand_ids = cand_ids.astype(np.int64)

    keep_mask = prune_detours(points, cand_ids, cand_d, metric, chunk=chunk)

    d_half = graph_degree // 2
    forward = np.full((n, graph_degree), -1, dtype=np.int64)
    fwd_count = np.zeros(n, dtype=np.int64)
    # Strong (unpruned) forward edges first, in rank order.
    for u in range(n):
        kept = cand_ids[u][keep_mask[u]]
        take = kept[: max(d_half, 1)]
        forward[u, : take.size] = take
        fwd_count[u] = take.size

    # Reverse edges: rank candidates by how early they appear in the
    # source's kept list (CAGRA's reverse-rank ordering, approximated by
    # forward rank).
    rev_lists: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        kept = cand_ids[u][keep_mask[u]]
        for rank, v in enumerate(kept):
            rev_lists[int(v)].append((rank, u))
    out = np.full((n, graph_degree), -1, dtype=np.int64)
    for u in range(n):
        chosen: list[int] = []
        seen = set()
        for v in forward[u, : fwd_count[u]]:
            if v not in seen:
                chosen.append(int(v))
                seen.add(int(v))
        for _, src in sorted(rev_lists[u]):
            if len(chosen) >= graph_degree:
                break
            if src not in seen and src != u:
                chosen.append(int(src))
                seen.add(int(src))
        # Pad from remaining intermediate candidates (pruned ones included).
        if len(chosen) < graph_degree:
            for v in cand_ids[u]:
                if len(chosen) >= graph_degree:
                    break
                if int(v) not in seen and int(v) != u:
                    chosen.append(int(v))
                    seen.add(int(v))
        out[u, : len(chosen)] = chosen
    return GraphIndex.from_matrix(out.astype(np.int32), kind="cagra")


def prune_detours(
    points: np.ndarray,
    cand_ids: np.ndarray,
    cand_d: np.ndarray,
    metric: str = "l2",
    chunk: int = 256,
) -> np.ndarray:
    """Detour pruning mask over sorted candidate lists.

    Edge ``u→v`` (rank j) is *detourable* if some earlier candidate ``w``
    (rank < j) satisfies ``d(w, v) < d(u, v)`` — one can reach ``v`` more
    cheaply through ``w``.  Vectorized per chunk: one batched Gram tensor
    gives all intra-candidate distances for ``chunk`` nodes at once.

    Returns a boolean mask of kept (non-detourable) edges; rank 0 is always
    kept.
    """
    points = np.asarray(points, dtype=np.float32)
    cand_ids = np.asarray(cand_ids)
    n, k = cand_ids.shape
    keep = np.ones((n, k), dtype=bool)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        g = points[cand_ids[lo:hi]]  # (c, k, dim)
        if metric == "l2":
            sq = np.einsum("ckd,ckd->ck", g, g)
            gram = np.einsum("ckd,cjd->ckj", g, g)
            pair = sq[:, :, None] + sq[:, None, :] - 2.0 * gram
            np.maximum(pair, 0.0, out=pair)
        else:
            pair = 1.0 - np.einsum("ckd,cjd->ckj", g, g)
        # pair[c, w, j] = d(w, v_j); mask w >= j (only earlier ranks count)
        tri = np.tril(np.ones((k, k), dtype=bool))  # w >= j when w row index
        pair = np.where(tri[None, :, :], np.inf, pair)
        best_detour = pair.min(axis=1)  # (c, k) min over earlier-ranked w
        keep[lo:hi] = best_detour >= cand_d[lo:hi]
        keep[lo:hi, 0] = True
    return keep
