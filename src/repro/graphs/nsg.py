"""NSG construction (Fu et al., "Navigating Spreading-out Graph" [15]).

NSG sparsifies a kNN graph with MRNG-style edge selection seeded from a
*navigating node* (the medoid): for each vertex, candidates discovered by a
search from the navigating node are filtered with the occlusion rule (keep
an edge u→v only if no already-kept neighbour w of u is closer to v than u
is), then a spanning tree from the navigating node repairs connectivity.

The result is a sparse, low-out-degree graph that greedy search navigates
from a single fixed entry — a third graph family (besides CAGRA and NSW)
for the ALGAS serving layer, matching the paper's claim of supporting
"general GPU graphs".
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..data.metrics import query_distances
from .base import GraphIndex
from .knn import exact_knn_matrix
from .utils import medoid

__all__ = ["build_nsg"]


def build_nsg(
    points: np.ndarray,
    out_degree: int = 16,
    knn_k: int | None = None,
    search_l: int = 48,
    metric: str = "l2",
    seed: int = 0,
    build_backend: str = "scalar",
) -> GraphIndex:
    """Build an NSG over ``points`` with out-degree at most ``out_degree``.

    Parameters
    ----------
    knn_k:
        size of the intermediate kNN candidate pool (default ``2·out_degree``).
    search_l:
        candidate-list length of the construction-time search from the
        navigating node (larger = better edge candidates, slower build).
    build_backend:
        ``"scalar"`` runs the per-vertex searches and the sequential MRNG
        occlusion test below; ``"vectorized"`` batches all medoid-rooted
        searches through the lockstep engine and uses the chunked
        triangle-inequality prune
        (:func:`~repro.graphs.build_batched.build_nsg_batched`).
    """
    points = np.asarray(points, dtype=np.float32)
    n = points.shape[0]
    if out_degree <= 0:
        raise ValueError("out_degree must be positive")
    if n <= out_degree:
        raise ValueError("need more points than out_degree")
    if build_backend not in ("scalar", "vectorized"):
        raise ValueError(f"unknown build_backend {build_backend!r}")
    if build_backend == "vectorized":
        from .build_batched import build_nsg_batched

        return build_nsg_batched(points, out_degree, knn_k, search_l, metric, seed)
    knn_k = knn_k or 2 * out_degree
    knn_ids, knn_d = exact_knn_matrix(points, min(knn_k, n - 1), metric)
    nav = medoid(points, metric, seed=seed)

    # Phase 1: per-vertex candidate pools = kNN ∪ search path from nav.
    knn_lists = [knn_ids[v] for v in range(n)]
    adj: list[np.ndarray] = [np.empty(0, np.int64)] * n
    for v in range(n):
        path = _search_path(points, knn_lists, points[v], nav, search_l, metric)
        pool_ids = np.unique(np.concatenate([knn_ids[v].astype(np.int64), path]))
        pool_ids = pool_ids[pool_ids != v]
        pool_d = query_distances(points[v], points[pool_ids], metric)
        order = np.argsort(pool_d, kind="stable")
        adj[v] = _occlusion_select(
            points, v, pool_ids[order], pool_d[order], out_degree, metric
        )

    # Phase 2: connectivity repair — BFS tree from the navigating node,
    # attaching unreachable vertices to their nearest reachable neighbour.
    # Anchors with spare capacity are preferred (append-only attachment
    # cannot disconnect an existing subtree the way edge replacement can),
    # and the BFS+attach cycle iterates to a fixpoint so replacement-induced
    # disconnections are themselves repaired.
    for _ in range(10):
        reachable = _bfs_reachable(adj, nav, n)
        unreached = np.flatnonzero(~reachable)
        if unreached.size == 0:
            break
        reach_ids = np.flatnonzero(reachable)
        for v in unreached:
            d = query_distances(points[v], points[reach_ids], metric)
            order = np.argsort(d, kind="stable")
            anchor = None
            for i in order:
                a = int(reach_ids[i])
                if adj[a].size < out_degree:
                    anchor = a
                    break
            if anchor is not None:
                adj[anchor] = np.append(adj[anchor], v)
            else:
                anchor = int(reach_ids[int(order[0])])
                adj[anchor] = np.append(adj[anchor][:-1], v)

    lists = [a.astype(np.int32) for a in adj]
    return GraphIndex.from_neighbor_lists(lists, kind="nsg")


def _search_path(
    points: np.ndarray,
    knn_lists: list[np.ndarray],
    query: np.ndarray,
    entry: int,
    l: int,
    metric: str,
) -> np.ndarray:
    """Greedy search over the kNN graph; returns every expanded vertex."""
    visited = {entry}
    d0 = float(query_distances(query, points[entry][None, :], metric)[0])
    cand: list[list] = [[d0, entry, False]]
    expanded: list[int] = []
    while True:
        sel = next((c for c in cand if not c[2]), None)
        if sel is None:
            break
        sel[2] = True
        expanded.append(sel[1])
        fresh = [int(u) for u in knn_lists[sel[1]] if int(u) not in visited]
        if fresh:
            visited.update(fresh)
            nd = query_distances(query, points[fresh], metric)
            cand.extend([float(d), u, False] for d, u in zip(nd, fresh))
            cand.sort(key=lambda c: (c[0], c[1]))
            del cand[l:]
    return np.array(expanded, dtype=np.int64)


def _occlusion_select(
    points: np.ndarray,
    v: int,
    pool_ids: np.ndarray,
    pool_d: np.ndarray,
    out_degree: int,
    metric: str,
) -> np.ndarray:
    """MRNG rule: keep u→c unless a kept neighbour is closer to c than u."""
    kept: list[int] = []
    for c, d_vc in zip(pool_ids.tolist(), pool_d.tolist()):
        if len(kept) >= out_degree:
            break
        occluded = False
        if kept:
            d_kc = query_distances(points[c], points[np.array(kept)], metric)
            occluded = bool((d_kc < d_vc).any())
        if not occluded:
            kept.append(int(c))
    return np.array(kept, dtype=np.int64)


def _bfs_reachable(adj: list[np.ndarray], start: int, n: int) -> np.ndarray:
    seen = np.zeros(n, dtype=bool)
    seen[start] = True
    dq = deque([start])
    while dq:
        v = dq.popleft()
        for u in adj[v]:
            u = int(u)
            if not seen[u]:
                seen[u] = True
                dq.append(u)
    return seen
