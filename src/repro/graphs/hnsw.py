"""HNSW graph construction (Malkov & Yashunin, TPAMI'18).

GANNS [23] builds HNSW/NSW graphs; the paper's NSW experiments use the
flat variant, but the hierarchical index is part of the same family and is
provided for completeness.  The build is the reference incremental
algorithm: each point draws a level from a geometric distribution, is
routed greedily through the upper layers, and is linked on every layer at
or below its level with the *heuristic* neighbour selection (keep a
candidate only if it is closer to the query than to every already-selected
neighbour — the diversification rule that keeps the graph navigable).

The ALGAS search kernels consume flat CSR graphs, so :meth:`HNSWIndex.to_graph_index`
exports layer 0 (where all points live); :meth:`HNSWIndex.search` performs
the full hierarchical descent for CPU-side use.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from ..data.metrics import query_distances
from .base import GraphIndex

__all__ = ["HNSWIndex", "build_hnsw"]


@dataclass
class _Layer:
    adj: dict[int, list[int]] = field(default_factory=dict)

    def neighbors(self, v: int) -> list[int]:
        return self.adj.get(v, [])


class HNSWIndex:
    """Hierarchical navigable small world index."""

    def __init__(
        self,
        points: np.ndarray,
        m: int = 12,
        ef_construction: int = 64,
        metric: str = "l2",
        ml: float | None = None,
        seed: int = 0,
    ):
        if m <= 0 or ef_construction < m:
            raise ValueError("need 0 < m <= ef_construction")
        self.points = np.asarray(points, dtype=np.float32)
        if self.points.ndim != 2 or self.points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, dim) array")
        self.m = m
        self.m0 = 2 * m  # layer-0 degree cap, per the paper
        self.ef_construction = ef_construction
        self.metric = metric
        self.ml = ml if ml is not None else 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)
        self.layers: list[_Layer] = [_Layer()]
        self.levels = np.zeros(self.points.shape[0], dtype=np.int64)
        self.entry: int | None = None
        for v in range(self.points.shape[0]):
            self._insert(v)

    # ------------------------------------------------------------ building
    def _draw_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self.ml)

    def _insert(self, v: int) -> None:
        level = self._draw_level()
        self.levels[v] = level
        while len(self.layers) <= level:
            self.layers.append(_Layer())
        if self.entry is None:
            self.entry = v
            for lc in range(level + 1):
                self.layers[lc].adj[v] = []
            return
        ep = self.entry
        top = int(self.levels[self.entry])
        q = self.points[v]
        # Greedy descent through layers above the insertion level.
        for lc in range(top, level, -1):
            ep = self._greedy_closest(q, ep, lc)
        # Insert with ef-search on each layer at or below min(level, top).
        for lc in range(min(level, top), -1, -1):
            cand = self._search_layer(q, [ep], self.ef_construction, lc)
            cap = self.m0 if lc == 0 else self.m
            selected = self._select_heuristic(q, cand, self.m)
            self.layers[lc].adj[v] = [u for _, u in selected]
            for d_uv, u in selected:
                self.layers[lc].adj.setdefault(u, []).append(v)
                if len(self.layers[lc].adj[u]) > cap:
                    self._shrink(u, lc, cap)
            ep = selected[0][1] if selected else ep
        if level > top:
            self.entry = v

    def _shrink(self, u: int, lc: int, cap: int) -> None:
        nbrs = self.layers[lc].adj[u]
        d = query_distances(self.points[u], self.points[np.array(nbrs)], self.metric)
        pairs = sorted(zip(d.tolist(), nbrs))
        selected = self._select_heuristic(self.points[u], pairs, cap)
        self.layers[lc].adj[u] = [v for _, v in selected]

    def _select_heuristic(
        self, q: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[tuple[float, int]]:
        """Diversifying neighbour selection (HNSW Algorithm 4)."""
        out: list[tuple[float, int]] = []
        for d_c, c in sorted(candidates):
            if len(out) >= m:
                break
            ok = True
            for _, s in out:
                if (
                    float(
                        query_distances(
                            self.points[c], self.points[s][None, :], self.metric
                        )[0]
                    )
                    < d_c
                ):
                    ok = False
                    break
            if ok:
                out.append((d_c, c))
        if not out and candidates:
            out = [min(candidates)]
        return out

    # ----------------------------------------------------------- searching
    def _greedy_closest(self, q: np.ndarray, ep: int, lc: int) -> int:
        cur = ep
        cur_d = float(query_distances(q, self.points[cur][None, :], self.metric)[0])
        improved = True
        while improved:
            improved = False
            nbrs = self.layers[lc].neighbors(cur)
            if not nbrs:
                break
            d = query_distances(q, self.points[np.array(nbrs)], self.metric)
            i = int(d.argmin())
            if float(d[i]) < cur_d:
                cur, cur_d = nbrs[i], float(d[i])
                improved = True
        return cur

    def _search_layer(
        self, q: np.ndarray, entries: list[int], ef: int, lc: int
    ) -> list[tuple[float, int]]:
        d0 = query_distances(q, self.points[np.array(entries)], self.metric)
        visited = set(entries)
        frontier = [(float(d), e) for d, e in zip(d0, entries)]
        heapq.heapify(frontier)
        results = [(-float(d), e) for d, e in zip(d0, entries)]
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)
        while frontier:
            d, v = heapq.heappop(frontier)
            if len(results) >= ef and d > -results[0][0]:
                break
            fresh = [u for u in self.layers[lc].neighbors(v) if u not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            du = query_distances(q, self.points[np.array(fresh)], self.metric)
            for dd, u in zip(du.tolist(), fresh):
                if len(results) < ef or dd < -results[0][0]:
                    heapq.heappush(frontier, (dd, u))
                    heapq.heappush(results, (-dd, u))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-nd, u) for nd, u in results)

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Hierarchical k-NN search (descend upper layers, ef-search layer 0)."""
        if k <= 0:
            raise ValueError("k must be positive")
        ef = max(ef or self.ef_construction, k)
        q = np.asarray(query, dtype=np.float32)
        ep = self.entry
        for lc in range(int(self.levels[self.entry]), 0, -1):
            ep = self._greedy_closest(q, ep, lc)
        found = self._search_layer(q, [ep], ef, 0)[:k]
        ids = np.array([u for _, u in found], dtype=np.int64)
        dists = np.array([d for d, _ in found], dtype=np.float32)
        return ids, dists

    # ------------------------------------------------------------- exports
    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def to_graph_index(self) -> GraphIndex:
        """Flat layer-0 graph for the GPU search kernels."""
        n = self.points.shape[0]
        lists = [
            np.asarray(self.layers[0].adj.get(v, []), dtype=np.int32)
            for v in range(n)
        ]
        return GraphIndex.from_neighbor_lists(lists, kind="hnsw-l0")


def build_hnsw(
    points: np.ndarray,
    m: int = 12,
    ef_construction: int = 64,
    metric: str = "l2",
    seed: int = 0,
    build_backend: str = "scalar",
    parallelism: int = 0,
    parallel_mode: str = "process",
) -> GraphIndex:
    """Build an HNSW index and export its layer-0 graph (GPU-searchable).

    ``build_backend="vectorized"`` builds the layer-0 export directly in
    doubling waves through the lockstep engine
    (:func:`~repro.graphs.build_batched.build_hnsw_batched`), with the
    heuristic neighbour selection replaced by the batched occlusion
    prune.  The scalar path (full :class:`HNSWIndex`) stays the oracle;
    use it when the hierarchical CPU index itself is needed.
    """
    if build_backend not in ("scalar", "vectorized"):
        raise ValueError(f"unknown build_backend {build_backend!r}")
    if build_backend == "vectorized":
        points = np.asarray(points, dtype=np.float32)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, dim) array")
        if m <= 0 or ef_construction < m:
            raise ValueError("need 0 < m <= ef_construction")
        from .build_batched import build_hnsw_batched

        return build_hnsw_batched(
            points, m=m, ef_construction=ef_construction, metric=metric,
            seed=seed, parallelism=parallelism, parallel_mode=parallel_mode,
        )
    return HNSWIndex(
        points, m=m, ef_construction=ef_construction, metric=metric, seed=seed
    ).to_graph_index()
