"""repro — reproduction of ALGAS (IPPS 2025).

A low-latency GPU graph-ANNS serving system — dynamic batching on a
persistent kernel, beam-extend search, GPU-CPU cooperative TopK merge, and
adaptive GPU tuning — reproduced in Python on a discrete-event GPU
simulator substrate.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import load_dataset, build_cagra, ALGASSystem
    ds = load_dataset("sift1m-mini", n=8000)
    graph = build_cagra(ds.base, graph_degree=32, metric=ds.metric)
    system = ALGASSystem(ds.base, graph, metric=ds.metric, k=16, l_total=128)
    report = system.serve(ds.queries)
    print(report.mean_latency_us, report.throughput_qps)
"""

from .baselines import CAGRASystem, GANNSSystem, IVFSystem
from .core import (
    ALGASSystem,
    ReplicatedServer,
    ServeConfig,
    ServeReport,
    ShardedServer,
    SystemReport,
    tune,
)
from .data import Dataset, load_dataset, recall
from .gpusim import RTX_A6000, CostModel, CostParams, DeviceProperties
from .graphs import GraphIndex, build_cagra, build_nsw, build_nsw_fast
from .hybrid import HybridSystem, PilotIndex, build_pilot
from .resilience import FaultPlan, ResiliencePolicy, named_plan, run_chaos
from .search import BeamConfig, IVFFlatIndex, intra_cta_search, multi_cta_search
from .telemetry import MetricsRegistry, Telemetry

__version__ = "1.0.0"

__all__ = [
    "CAGRASystem",
    "GANNSSystem",
    "IVFSystem",
    "ALGASSystem",
    "ReplicatedServer",
    "ShardedServer",
    "ServeConfig",
    "ServeReport",
    "SystemReport",
    "Telemetry",
    "MetricsRegistry",
    "FaultPlan",
    "ResiliencePolicy",
    "named_plan",
    "run_chaos",
    "tune",
    "Dataset",
    "load_dataset",
    "recall",
    "RTX_A6000",
    "CostModel",
    "CostParams",
    "DeviceProperties",
    "GraphIndex",
    "build_cagra",
    "build_nsw",
    "build_nsw_fast",
    "HybridSystem",
    "PilotIndex",
    "build_pilot",
    "BeamConfig",
    "IVFFlatIndex",
    "intra_cta_search",
    "multi_cta_search",
    "__version__",
]
