"""Per-figure experiment definitions (motivation figures: 1, 2, 3, 7).

Each ``figNN_data`` function computes the figure's underlying numbers from
cached searches and returns ``(text, data)`` where ``text`` reproduces the
rows/series the paper reports and ``data`` is machine-checkable (the
benchmark asserts the paper's qualitative shape on it).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_series, format_table
from ..analysis.stats import (
    batch_step_spread,
    sort_time_fraction,
    step_statistics,
)
from .runner import BENCH_DATASETS, SCALE, cached_search, get_dataset, get_graph, make_system

__all__ = [
    "fig01_data",
    "fig02_data",
    "fig03_data",
    "fig07_data",
    "precision_frontier_data",
    "default_l",
]


def default_l() -> int:
    """Candidate-list size scaled to the bench corpus: at very small
    scales a 128-entry list covers so much of the corpus that every query
    exhausts it in the minimum number of steps and the Fig. 1/2 step tail
    disappears."""
    return max(32, min(128, SCALE.n_base // 40))


def _greedy_traces(dataset: str, l_total: int = 128):
    """Single-CTA greedy traces (the configuration Fig. 1–3 measure)."""
    system = make_system(
        "ganns", dataset, "cagra", l_total=l_total, entries_per_cta=1
    )
    _, _, traces = cached_search(system, dataset, "cagra")
    return system, traces


def fig01_data(l_total: int | None = None):
    """Fig. 1 — distribution of query steps across the query set."""
    l_total = l_total or default_l()
    rows = []
    data = {}
    for name in BENCH_DATASETS:
        _, traces = _greedy_traces(name, l_total)
        st = step_statistics(traces)
        rows.append(
            (name, st.min, st.p50, st.mean, st.p99, st.max, 100 * st.max_over_mean)
        )
        data[name] = st
    text = format_table(
        ["dataset", "min", "p50", "mean", "p99", "max", "max/mean %"],
        rows,
        title=f"Fig.1 — query step distribution (candidate list = {l_total})",
    )
    return text, data


def fig02_data(batch_size: int = 32, n_batches: int = 8, l_total: int | None = None):
    """Fig. 2 — step spread within batches (batch = 32, 8 batches shown)."""
    l_total = l_total or default_l()
    rows = []
    data = {}
    for name in BENCH_DATASETS:
        _, traces = _greedy_traces(name, l_total)
        spread = batch_step_spread(traces, batch_size)[:n_batches]
        data[name] = spread
        for bi, (mn, mx, ratio) in enumerate(spread):
            rows.append((name, bi, mn, mx, 100 * (ratio - 1)))
    text = format_table(
        ["dataset", "batch", "min steps", "max steps", "slowest vs fastest %"],
        rows,
        title=f"Fig.2 — step spread within batches of {batch_size}",
    )
    return text, data


def fig03_data(l_total: int = 128):
    """Fig. 3 — share of search time spent on sorting vs calculation."""
    rows = []
    data = {}
    for name in BENCH_DATASETS:
        system, traces = _greedy_traces(name, l_total)
        frac = sort_time_fraction(traces, system.cost_model)
        rows.append((name, 100 * (1 - frac), 100 * frac))
        data[name] = frac
    text = format_table(
        ["dataset", "calculation %", "sorting %"],
        rows,
        title="Fig.3 — calculation vs sorting time (greedy search)",
    )
    return text, data


def fig07_data(dataset: str = "sift1m-mini", l_total: int = 128):
    """Fig. 7 — selected-candidate distance vs search step.

    Reports the mean (over queries) distance of the expanded candidate,
    normalized by each query's final TopK distance, at relative step
    positions — the paper's "sharp early drop, late convergence" curve.
    """
    _, traces = _greedy_traces(dataset, l_total)
    positions = np.linspace(0.0, 1.0, 11)
    curves = []
    for t in traces:
        steps = t.ctas[0].steps[1:]  # skip the seed step
        d = np.array([s.best_dist for s in steps], dtype=np.float64)
        if d.size < 4 or not np.isfinite(d).all():
            continue
        final = d[-1] if d[-1] > 0 else d[d > 0].min(initial=1.0)
        idx = np.minimum((positions * (d.size - 1)).astype(int), d.size - 1)
        curves.append(d[idx] / final)
    mean_curve = np.mean(np.array(curves), axis=0)
    text = format_series(
        f"Fig.7 — {dataset} distance vs step (relative to final)",
        [f"{p:.0%}" for p in positions],
        [float(v) for v in mean_curve],
        floatfmt=".2f",
    )
    return text, mean_curve


def precision_frontier_data(
    dataset: str = "gist1m-mini",
    l_values: tuple[int, ...] = (64, 128, 256),
    k: int = 16,
    n_ctas: int = 4,
    rerank_mult: int = 2,
):
    """Recall-vs-latency frontier: float32 / int8 / pq at matched ``l_total``.

    All precisions search the same graph from the same entry points at each
    candidate budget, so every frontier point differs only in the distance
    substrate (plus the quantized paths' exact re-rank).  Latency is the
    simulated-GPU per-query time from the cost model — the quantity the
    serve stack reports — priced from each run's own traces (quantized
    steps are priced as DP4A / table-lookup work, the re-rank as a float32
    pass).
    """
    from ..data.groundtruth import recall
    from ..gpusim.costmodel import CostModel
    from ..gpusim.device import RTX_A6000
    from ..search.batched import batched_multi_cta_search
    from ..search.multi_cta import make_entries
    from ..search.precision import make_codec

    ds = get_dataset(dataset)
    g = get_graph(dataset, "cagra")
    gt = ds.gt_at(k)
    cm = CostModel(RTX_A6000)
    codecs = {
        "float32": None,
        "int8": make_codec("int8", ds.base, metric=ds.metric),
        "pq": make_codec("pq", ds.base, metric=ds.metric),
    }
    rows = []
    data: dict[str, list[dict]] = {p: [] for p in codecs}
    for l_total in l_values:
        rng = np.random.default_rng(11)
        entries = [
            make_entries(ds.base.shape[0], n_ctas, 2, rng)
            for _ in range(ds.queries.shape[0])
        ]
        for prec, codec in codecs.items():
            res = batched_multi_cta_search(
                ds.base, g, ds.queries, k, l_total, n_ctas,
                metric=ds.metric, entries=entries,
                codec=codec, rerank_mult=rerank_mult,
            )
            ids = np.stack([r.ids for r in res])
            rec = recall(ids, gt)
            lat = float(np.mean([cm.query_gpu_time_us(r.trace) for r in res]))
            rows.append((prec, l_total, rec, lat))
            data[prec].append(
                {"l_total": l_total, "recall": rec, "sim_latency_us": lat}
            )
    text = format_table(
        ["precision", "l_total", f"recall@{k}", "sim latency (us)"],
        rows,
        title=(
            f"Recall-latency frontier — {dataset} "
            f"(n={ds.n}, dim={ds.dim}, {n_ctas} CTAs, "
            f"rerank {rerank_mult}x k)"
        ),
    )
    return text, data
