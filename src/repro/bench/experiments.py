"""Per-figure experiment definitions (evaluation: Figs. 10–18, Table I,
headline claims, motivation waste rate, and the DESIGN.md ablations).

Every function returns ``(text, data)``: ``text`` mirrors the paper's
rows/series, ``data`` is asserted on by the benchmark suite.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import format_series, format_table
from ..analysis.stats import bubble_waste_rate, sort_time_fraction
from ..core.persistent_kernel import PersistentKernel
from ..core.serving import QueryJob
from ..data import recall as recall_of
from .runner import (
    BENCH_DATASETS,
    cached_search,
    get_dataset,
    make_system,
    scheduled_report,
    serve_ivf,
    serve_system,
)

__all__ = [
    "fig10_11_data",
    "fig12_data",
    "fig13_data",
    "fig14_15_data",
    "fig16_data",
    "fig17_data",
    "fig18_data",
    "table1_data",
    "headline_data",
    "bubble_data",
    "ablation_persistent_kernel",
    "ablation_merge",
    "ablation_tuning",
    "ablation_beam_params",
]

_K = 16
_L = 128
_BATCH = 16


def _row(report, ds, k=_K):
    rec = recall_of(report.ids[:, :k], ds.gt_at(k))
    return rec, report.mean_latency_us, report.throughput_qps


def fig10_11_data(datasets=BENCH_DATASETS):
    """Figs. 10 & 11 — latency/throughput per {graph × method} + IVF.

    Batch 16, TopK 16, candidate list 128 (recall reported per row, as the
    red labels in the paper's figures).
    """
    rows = []
    data: dict[tuple, tuple] = {}
    for name in datasets:
        ds = get_dataset(name)
        for graph in ("cagra", "nsw"):
            for method in ("algas", "cagra", "ganns"):
                rep, _ = serve_system(
                    method, name, graph, k=_K, l_total=_L, batch_size=_BATCH
                )
                rec, lat, qps = _row(rep, ds)
                rows.append((name, f"{graph.upper()}-{method.upper()}", rec, lat, qps))
                data[(name, graph, method)] = (rec, lat, qps)
        # IVF: pick nprobe reaching (about) the ALGAS recall level.
        target = data[(name, "cagra", "algas")][0]
        best = None
        for nprobe in (1, 2, 4, 8, 16, 32, 64):
            rep = serve_ivf(name, nprobe=nprobe, k=_K, batch_size=_BATCH)
            rec, lat, qps = _row(rep, ds)
            best = (rec, lat, qps, nprobe)
            if rec >= target:
                break
        rows.append((name, f"IVF(np={best[3]})", best[0], best[1], best[2]))
        data[(name, "ivf", "ivf")] = best[:3]
    text = format_table(
        ["dataset", "graph-method", "recall", "latency_us", "qps"],
        [(a, b, f"{r:.3f}", lat, qps) for a, b, r, lat, qps in rows],
        title=f"Fig.10/11 — batch={_BATCH}, TopK={_K}, L={_L}",
    )
    return text, data


def fig12_data(dataset: str = "sift1m-mini", topks=(16, 32, 64, 128)):
    """Fig. 12 — latency vs TopK (recall labels per point)."""
    ds = get_dataset(dataset)
    rows = []
    data = {}
    for method in ("algas", "cagra"):
        for topk in topks:
            l_total = max(_L, 2 * topk)
            rep, _ = serve_system(
                method, dataset, "cagra", k=topk, l_total=l_total, batch_size=_BATCH
            )
            rec = recall_of(rep.ids[:, :topk], ds.gt_at(topk))
            rows.append((method.upper(), topk, f"{rec:.3f}", rep.mean_latency_us))
            data[(method, topk)] = (rec, rep.mean_latency_us)
    text = format_table(
        ["method", "TopK", "recall", "latency_us"],
        rows,
        title=f"Fig.12 — {dataset}, latency vs TopK (batch={_BATCH})",
    )
    return text, data


def fig13_data(dataset: str = "sift1m-mini"):
    """Fig. 13 — sorted per-query latency: static vs dynamic batching.

    Controlled comparison: the *same* multi-CTA search traces are scheduled
    through the dynamic engine (ALGAS) and the static engine (CAGRA-style
    batches), so every difference is the batching discipline.
    """
    algas = make_system("algas", dataset, "cagra", k=_K, l_total=_L, batch_size=_BATCH)
    ids, dists, traces = cached_search(algas, dataset, "cagra")
    from ..core.static_batcher import StaticBatchConfig, StaticBatchEngine
    from ..data.workload import closed_loop

    events = closed_loop(len(traces))
    jobs = algas.jobs_from_traces(traces, events)
    dyn = algas.make_engine().serve(jobs)
    static_cfg = StaticBatchConfig(
        batch_size=_BATCH,
        n_parallel=algas.n_parallel,
        k=_K,
        merge_on_gpu=True,
        mem_per_block=algas.mem_per_block(),
    )
    stat = StaticBatchEngine(algas.device, algas.cost_model, static_cfg).serve(jobs)
    dyn_sorted = dyn.sorted_latencies_us()
    stat_sorted = stat.sorted_latencies_us()
    qs = [0, 25, 50, 75, 90, 99]
    text = "\n".join(
        [
            f"Fig.13 — {dataset}: sorted query latency, dynamic vs static (batch={_BATCH})",
            format_series(
                "dynamic", [f"p{q}" for q in qs],
                [float(np.percentile(dyn_sorted, q)) for q in qs],
            ),
            format_series(
                "static ", [f"p{q}" for q in qs],
                [float(np.percentile(stat_sorted, q)) for q in qs],
            ),
        ]
    )
    return text, {"dynamic": dyn_sorted, "static": stat_sorted}


def fig14_15_data(
    datasets=("sift1m-mini", "glove200-mini"),
    batch_sizes=(1, 2, 4, 8, 16, 32, 64),
):
    """Figs. 14 & 15 — throughput/latency vs batch size, fixed recall.

    Traces are cached per search configuration, so the sweep re-schedules
    the same work under each batch size (the paper's methodology: fixed
    recall, vary batch).
    """
    rows = []
    data = {}
    for name in datasets:
        ds = get_dataset(name)
        for method in ("algas", "cagra", "ganns"):
            for b in batch_sizes:
                rep, _ = serve_system(
                    method, name, "cagra", k=_K, l_total=_L, batch_size=b
                )
                rec, lat, qps = _row(rep, ds)
                rows.append((name, method.upper(), b, lat, qps))
                data[(name, method, b)] = (rec, lat, qps)
    text = format_table(
        ["dataset", "method", "batch", "latency_us", "qps"],
        rows,
        title="Fig.14/15 — throughput & latency vs batch size",
    )
    return text, data


def fig16_data(
    datasets=BENCH_DATASETS,
    l_values=(128, 256, 512, 768),
    n_ctas: int = 8,
):
    """Fig. 16 — beam extend vs greedy extend (8 CTAs): recall vs QPS."""
    rows = []
    data = {}
    for name in datasets:
        ds = get_dataset(name)
        for variant, beam in (("greedy-extend", False), ("beam-extend", True)):
            for l_total in l_values:
                rep, _ = serve_system(
                    "algas", name, "cagra",
                    k=_K, l_total=l_total, batch_size=_BATCH,
                    beam=beam, n_parallel=n_ctas,
                )
                rec, lat, qps = _row(rep, ds)
                rows.append((name, variant, l_total, f"{rec:.3f}", lat, qps))
                data[(name, variant, l_total)] = (rec, lat, qps)
    text = format_table(
        ["dataset", "variant", "L", "recall", "latency_us", "qps"],
        rows,
        title=f"Fig.16 — beam vs greedy extend ({n_ctas} CTAs)",
    )
    return text, data


def fig17_data(datasets=BENCH_DATASETS, l_total: int = 384, n_ctas: int = 2):
    """Fig. 17 — sorting share before/after beam extend.

    Uses 2 CTAs per query (long per-CTA candidate lists) so the sorting
    share sits in the Fig. 3 regime the paper measures.
    """
    rows = []
    data = {}
    for name in datasets:
        fr = {}
        for variant, beam in (("greedy", False), ("beam", True)):
            system = make_system(
                "algas", name, "cagra",
                k=_K, l_total=l_total, batch_size=_BATCH,
                beam=beam, n_parallel=n_ctas,
            )
            _, _, traces = cached_search(system, name, "cagra")
            fr[variant] = sort_time_fraction(traces, system.cost_model)
        rows.append((name, 100 * fr["greedy"], 100 * fr["beam"]))
        data[name] = fr
    text = format_table(
        ["dataset", "sorting % (greedy)", "sorting % (beam)"],
        rows,
        title=f"Fig.17 — sorting share before/after beam extend (L={l_total})",
    )
    return text, data


def fig18_data(
    datasets=("sift1m-mini", "gist1m-mini"),
    thread_counts=(1, 2, 4),
    batch_size: int = 32,
):
    """Fig. 18 — host parallel processing and GDRCopy state mirrors.

    Larger slot count (32) stresses the host path, as in §V-B.  QPS is
    reported for each (threads × state-mode) combination.
    """
    rows = []
    data = {}
    for name in datasets:
        for mode in ("gdrcopy", "naive"):
            for ht in thread_counts:
                rep, _ = serve_system(
                    "algas", name, "cagra",
                    k=_K, l_total=_L, batch_size=batch_size,
                    host_threads=ht, state_mode=mode,
                )
                rows.append((name, mode, ht, rep.mean_latency_us, rep.throughput_qps))
                data[(name, mode, ht)] = (rep.mean_latency_us, rep.throughput_qps)
    text = format_table(
        ["dataset", "state mode", "host threads", "latency_us", "qps"],
        rows,
        title=f"Fig.18 — host threads × state sync (batch={batch_size})",
    )
    return text, data


def table1_data(dataset: str = "sift1m-mini"):
    """Table I — qualitative grid, quantified on one dataset."""
    ds = get_dataset(dataset)
    rows = []
    data = {}
    cases = [
        ("CAGRA", "single query", "cagra", 1),
        ("CAGRA", "large batch", "cagra", 64),
        ("ALGAS", "small batch", "algas", _BATCH),
        ("GANNS", "large batch", "ganns", 64),
    ]
    for sys_name, regime, method, batch in cases:
        rep, _ = serve_system(method, dataset, "cagra", k=_K, l_total=_L, batch_size=batch)
        rec, lat, qps = _row(rep, ds)
        rows.append((sys_name, regime, batch, lat, qps))
        data[(sys_name, regime)] = (lat, qps)
    text = format_table(
        ["system", "regime", "batch", "latency_us", "throughput_qps"],
        rows,
        title=f"Table I — {dataset}",
    )
    return text, data


def headline_data(datasets=BENCH_DATASETS):
    """§VI-A headline: ALGAS vs CAGRA — latency −21.9–35.4 %,
    throughput +27.8–55.2 % (paper's reported ranges)."""
    rows = []
    data = {}
    for name in datasets:
        a, _ = serve_system("algas", name, "cagra", k=_K, l_total=_L, batch_size=_BATCH)
        c, _ = serve_system("cagra", name, "cagra", k=_K, l_total=_L, batch_size=_BATCH)
        lat_red = 100 * (1 - a.mean_latency_us / c.mean_latency_us)
        qps_gain = 100 * (a.throughput_qps / c.throughput_qps - 1)
        rows.append((name, lat_red, qps_gain))
        data[name] = (lat_red, qps_gain)
    text = format_table(
        ["dataset", "latency reduction %", "throughput gain %"],
        rows,
        title=f"Headline — ALGAS vs CAGRA (batch={_BATCH})",
    )
    return text, data


def bubble_data(datasets=BENCH_DATASETS, batch_size: int = 32):
    """§III-A — waste rate of static batching (paper: 22.9–33.7 %)."""
    rows = []
    data = {}
    for name in datasets:
        rep, _ = serve_system(
            "cagra", name, "cagra", k=_K, l_total=_L, batch_size=batch_size
        )
        waste = bubble_waste_rate(rep.serve.records)
        rows.append((name, 100 * waste))
        data[name] = waste
    text = format_table(
        ["dataset", "waste rate %"],
        rows,
        title=f"Motivation — static-batch bubble waste (batch={batch_size})",
    )
    return text, data


# ------------------------------------------------------------------ ablations
def ablation_persistent_kernel(
    dataset: str = "sift1m-mini", steps_per_launch=(1, 4, 16, 64)
):
    """Persistent kernel vs partitioned kernel (§IV-A's rejected design)."""
    system = make_system("algas", dataset, "cagra", k=_K, l_total=_L, batch_size=_BATCH)
    _, _, traces = cached_search(system, dataset, "cagra")
    pk = PersistentKernel(system.device, system.tuning)
    # One slot's worth of CTAs at a time (the persistent kernel's unit).
    sample = traces[: system.batch_size]
    per_block = [
        system.cost_model.step_durations_us(c) for t in sample for c in t.ctas
    ]
    persistent = pk.persistent_makespan(per_block)
    rows = [("persistent", "-", persistent, 0.0)]
    data = {"persistent": persistent}
    for spl in steps_per_launch:
        m = pk.partitioned_makespan(per_block, spl)
        rows.append(("partitioned", spl, m, 100 * (m / persistent - 1)))
        data[spl] = m
    text = format_table(
        ["kernel", "steps/launch", "makespan_us", "overhead %"],
        rows,
        title=f"Ablation — persistent vs partitioned kernel ({dataset})",
    )
    return text, data


def ablation_merge(dataset: str = "sift1m-mini"):
    """GPU–CPU cooperative merge vs on-GPU merge kernel (§IV-B)."""
    rows = []
    data = {}
    for label, on_cpu in (("cpu-merge (ALGAS)", True), ("gpu-merge", False)):
        rep, _ = serve_system(
            "algas", dataset, "cagra",
            k=_K, l_total=_L, batch_size=_BATCH, merge_on_cpu=on_cpu,
        )
        rows.append((label, rep.mean_latency_us, rep.throughput_qps))
        data[on_cpu] = (rep.mean_latency_us, rep.throughput_qps)
    text = format_table(
        ["merge", "latency_us", "qps"],
        rows,
        title=f"Ablation — TopK merge location ({dataset})",
    )
    return text, data


def ablation_tuning(dataset: str = "sift1m-mini", parallels=(1, 2, 4, 8)):
    """Adaptive N_parallel vs fixed values (§IV-C)."""
    ds = get_dataset(dataset)
    rows = []
    data = {}
    for np_ in parallels:
        rep, system = serve_system(
            "algas", dataset, "cagra",
            k=_K, l_total=_L, batch_size=_BATCH, n_parallel=np_,
        )
        rec, lat, qps = _row(rep, ds)
        rows.append((np_, f"{rec:.3f}", lat, qps))
        data[np_] = (rec, lat, qps)
    text = format_table(
        ["N_parallel", "recall", "latency_us", "qps"],
        rows,
        title=f"Ablation — CTAs per query ({dataset}, batch={_BATCH})",
    )
    return text, data


def ablation_beam_params(
    dataset: str = "sift1m-mini",
    offsets=(4, 8, 16, 32),
    widths=(2, 4, 8),
    l_total: int = 192,
    n_parallel: int = 2,
):
    """Sensitivity of beam extend to offset_beam and beam width.

    Uses 2 CTAs per query so each CTA keeps a long candidate list (the
    regime where the phase threshold matters).  The ``"off"`` row disables
    beam extend entirely (pure greedy control).
    """
    from ..search.intra_cta import BeamConfig

    ds = get_dataset(dataset)
    rows = []
    data = {}
    rep, _ = serve_system(
        "algas", dataset, "cagra",
        k=_K, l_total=l_total, batch_size=_BATCH, beam=False,
        n_parallel=n_parallel,
    )
    rec, lat, qps = _row(rep, ds)
    rows.append(("off", "-", f"{rec:.3f}", lat, qps))
    data["off"] = (rec, lat, qps)
    for off in offsets:
        for w in widths:
            rep, _ = serve_system(
                "algas", dataset, "cagra",
                k=_K, l_total=l_total, batch_size=_BATCH,
                beam=BeamConfig(offset_beam=off, beam_width=w),
                n_parallel=n_parallel,
            )
            rec, lat, qps = _row(rep, ds)
            rows.append((off, w, f"{rec:.3f}", lat, qps))
            data[(off, w)] = (rec, lat, qps)
    text = format_table(
        ["offset_beam", "beam_width", "recall", "latency_us", "qps"],
        rows,
        title=f"Ablation — beam parameters ({dataset}, L={l_total}, T={n_parallel})",
    )
    return text, data
