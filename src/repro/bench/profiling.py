"""Shared cProfile harness for the CLI and the perf benchmarks.

Perf work should start from data, not guesses: ``repro serve --profile``
and ``bench_*.py --profile`` route their hot section through
:func:`profile_call` and print the top cumulative-time functions, so the
next optimisation PR can see exactly where the wall clock goes (the SoA
batcher tick and fused codec gathers in this repo both started as entries
in this listing).
"""

from __future__ import annotations

import cProfile
import io
import pstats

__all__ = ["profile_call", "TOP_DEFAULT"]

#: hotspots printed by default — enough to see past the harness frames.
TOP_DEFAULT = 20


def profile_call(fn, *args, top: int = TOP_DEFAULT, **kwargs):
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is the top-``top``
    cumulative-time listing as text (print it, log it, or drop it).
    """
    prof = cProfile.Profile()
    result = prof.runcall(fn, *args, **kwargs)
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return result, buf.getvalue()
