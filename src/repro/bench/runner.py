"""Benchmark runner: cached datasets, graphs, searches, and serve runs.

The expensive work in a figure reproduction is the *search* (it runs the
real kernels on real vectors).  Traces do not depend on the batching
discipline, so the runner caches them per search configuration and lets
every figure re-schedule the same traces under different engines/batch
sizes — both faster and a cleaner controlled comparison.

Benchmark scale is configurable through the ``REPRO_BENCH_SCALE`` env var
(``small``/``default``/``large``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from ..baselines import CAGRASystem, GANNSSystem, IVFSystem
from ..core import ALGASSystem
from ..core.pipeline import BaseGraphSystem, SystemReport
from ..core.serving import ServeReport
from ..data import Dataset, load_dataset
from ..data.workload import closed_loop
from ..graphs import GraphIndex, build_cagra, build_nsw_fast
from ..parallel import make_pool

__all__ = [
    "BenchScale",
    "SCALE",
    "get_dataset",
    "get_graph",
    "make_system",
    "cached_search",
    "scheduled_report",
    "serve_system",
    "run_sweep",
    "BENCH_DATASETS",
]


@dataclass(frozen=True)
class BenchScale:
    """Problem sizes for the benchmark suite."""

    n_base: int
    n_queries: int
    graph_degree: int
    gt_k: int


_SCALES = {
    "small": BenchScale(n_base=2_500, n_queries=32, graph_degree=16, gt_k=128),
    "default": BenchScale(n_base=6_000, n_queries=64, graph_degree=16, gt_k=128),
    "large": BenchScale(n_base=20_000, n_queries=128, graph_degree=32, gt_k=128),
}

SCALE: BenchScale = _SCALES[os.environ.get("REPRO_BENCH_SCALE", "default")]

#: datasets the figures iterate over (paper order); GIST runs smaller
#: because 960-d brute-force ground truth dominates setup time.
BENCH_DATASETS = ("sift1m-mini", "gist1m-mini", "glove200-mini", "nytimes-mini")


@lru_cache(maxsize=8)
def get_dataset(name: str) -> Dataset:
    n = SCALE.n_base
    if name == "gist1m-mini":
        n = max(1000, n // 2)
    return load_dataset(name, n=n, n_queries=SCALE.n_queries, gt_k=SCALE.gt_k, seed=7)


@lru_cache(maxsize=16)
def get_graph(name: str, kind: str = "cagra") -> GraphIndex:
    ds = get_dataset(name)
    if kind == "cagra":
        return build_cagra(ds.base, graph_degree=SCALE.graph_degree, metric=ds.metric)
    if kind == "nsw":
        return build_nsw_fast(ds.base, m=SCALE.graph_degree // 2, metric=ds.metric)
    raise ValueError(f"unknown graph kind {kind!r}")


_SYSTEMS = {
    "algas": ALGASSystem,
    "cagra": CAGRASystem,
    "ganns": GANNSSystem,
}


def make_system(
    method: str, dataset: str, graph_kind: str = "cagra", **kw
) -> BaseGraphSystem:
    """Instantiate a serving system over a cached dataset/graph."""
    ds = get_dataset(dataset)
    g = get_graph(dataset, graph_kind)
    cls = _SYSTEMS[method]
    kw.setdefault("metric", ds.metric)
    kw.setdefault("k", 16)
    kw.setdefault("l_total", 128)
    kw.setdefault("batch_size", 16)
    if method != "ganns":
        kw.setdefault("n_parallel", 8)
    return cls(ds.base, g, **kw)


# --------------------------------------------------------------- trace cache
_search_cache: dict[tuple, tuple] = {}


def _search_key(system: BaseGraphSystem, dataset: str, graph_kind: str) -> tuple:
    b = system.beam
    return (
        dataset,
        graph_kind,
        system.name,
        system.k,
        system.l_total,
        system.n_parallel,
        (b.offset_beam, b.beam_width) if b else None,
        system.entries_per_cta,
        system.seed,
        system.backend,
        system.precision,
        system.rerank_mult,
    )


def cached_search(system: BaseGraphSystem, dataset: str, graph_kind: str = "cagra"):
    """Search the bench query set once per configuration; reuse everywhere."""
    key = _search_key(system, dataset, graph_kind)
    if key not in _search_cache:
        ds = get_dataset(dataset)
        _search_cache[key] = system.search_all(ds.queries)
    return _search_cache[key]


def scheduled_report(
    system: BaseGraphSystem, dataset: str, graph_kind: str = "cagra"
) -> SystemReport:
    """Search (cached) + schedule under the system's engine."""
    ids, dists, traces = cached_search(system, dataset, graph_kind)
    events = closed_loop(len(traces))
    jobs = system.jobs_from_traces(traces, events)
    serve = system.make_engine().serve(jobs)
    return SystemReport(ids=ids, dists=dists, serve=serve, traces=traces)


def serve_system(
    method: str, dataset: str, graph_kind: str = "cagra", **kw
) -> tuple[SystemReport, BaseGraphSystem]:
    """One-call helper: build system, search (cached), schedule."""
    system = make_system(method, dataset, graph_kind, **kw)
    return scheduled_report(system, dataset, graph_kind), system


# ----------------------------------------------------------------- IVF cache
_ivf_cache: dict[tuple, SystemReport] = {}


def run_sweep(fn, configs, parallelism: int = 0, parallel_mode: str = "process"):
    """Apply ``fn`` to every config, optionally fanned across workers.

    The multi-core entry point for benchmark sweeps: each config is an
    independent (system build + search + schedule) pipeline, so the sweep
    scales across cores with no shared state.  Results return in config
    order regardless of completion order, so a parallel sweep emits the
    same result list as a sequential one.

    Process workers run ``fn`` in a separate interpreter: ``fn`` must be
    picklable (a module-level function, not a lambda) and the runner's
    per-process caches (:func:`get_dataset`, :func:`cached_search`) warm
    independently per worker — fork-context pools inherit already-warm
    parent caches copy-on-write.  Use ``parallel_mode="thread"`` to share
    the parent's caches when ``fn`` is numpy-bound.
    """
    with make_pool(parallelism, parallel_mode) as pool:
        return pool.map(fn, list(configs))


def serve_ivf(
    dataset: str, nprobe: int, nlist: int | None = None, k: int = 16, batch_size: int = 16
) -> SystemReport:
    """Serve the bench query set with the IVF baseline (cached)."""
    ds = get_dataset(dataset)
    nlist = nlist or max(16, int(4 * np.sqrt(ds.n)))
    key = (dataset, nlist, nprobe, k, batch_size)
    if key not in _ivf_cache:
        system = IVFSystem(
            ds.base, nlist=nlist, nprobe=nprobe, metric=ds.metric,
            k=k, batch_size=batch_size, seed=3,
        )
        _ivf_cache[key] = system.serve(ds.queries)
    return _ivf_cache[key]
