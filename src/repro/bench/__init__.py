"""Benchmark harness: cached runners and per-figure experiment definitions."""

from . import experiments, figures
from .profiling import profile_call
from .runner import (
    BENCH_DATASETS,
    SCALE,
    BenchScale,
    cached_search,
    get_dataset,
    get_graph,
    make_system,
    scheduled_report,
    serve_ivf,
    serve_system,
)

__all__ = [
    "experiments",
    "figures",
    "BENCH_DATASETS",
    "SCALE",
    "BenchScale",
    "cached_search",
    "profile_call",
    "get_dataset",
    "get_graph",
    "make_system",
    "scheduled_report",
    "serve_ivf",
    "serve_system",
]
