"""Result export: ServeReports and figure data to CSV/JSON.

Downstream users plot reproduction results with external tools; these
helpers serialize per-query records and metric summaries without any
plotting dependency.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

from ..core.serving import ServeReport

__all__ = ["records_to_csv", "summary_to_json", "rows_to_csv"]

_RECORD_FIELDS = (
    "query_id",
    "arrival_us",
    "dispatch_us",
    "gpu_start_us",
    "gpu_end_us",
    "detected_us",
    "complete_us",
    "service_latency_us",
    "e2e_latency_us",
    "bubble_us",
)


def records_to_csv(report: ServeReport, path: str | os.PathLike) -> int:
    """Write per-query timelines to CSV; returns the row count."""
    with open(Path(path), "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(_RECORD_FIELDS)
        for r in report.records:
            w.writerow(
                [
                    r.query_id,
                    r.arrival_us,
                    r.dispatch_us,
                    r.gpu_start_us,
                    r.gpu_end_us,
                    r.detected_us,
                    r.complete_us,
                    r.service_latency_us,
                    r.e2e_latency_us,
                    r.bubble_us,
                ]
            )
    return len(report.records)


def summary_to_json(
    report: ServeReport, path: str | os.PathLike, extra: dict | None = None
) -> dict:
    """Write the report's headline metrics (plus ``extra``) as JSON.

    Returns the serialized dict.  PCIe statistics are included when the
    report carries them.
    """
    payload = dict(report.summary())
    if report.pcie is not None:
        payload["pcie"] = {
            "transactions": report.pcie.transactions,
            "bytes_moved": report.pcie.bytes_moved,
            "busy_us": report.pcie.busy_us,
            "by_tag": dict(report.pcie.by_tag),
        }
    payload["host_busy_us"] = report.host_busy_us
    if extra:
        payload.update(extra)
    with open(Path(path), "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    return payload


def rows_to_csv(
    headers: list[str], rows: list, path: str | os.PathLike
) -> int:
    """Write generic figure rows (as produced by the bench functions)."""
    with open(Path(path), "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(headers)
        for row in rows:
            w.writerow(list(row))
    return len(rows)
