"""Plain-text table/series rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and greppable
(every figure bench emits a ``[figNN]``-prefixed block).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "banner"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    floatfmt: str = ".1f",
) -> str:
    """Render an aligned monospace table."""
    srows = [
        [
            f"{c:{floatfmt}}" if isinstance(c, float) else str(c)
            for c in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], floatfmt: str = ".1f"
) -> str:
    """Render one figure series as ``name: x=y`` pairs on a single line."""
    pairs = []
    for x, y in zip(xs, ys):
        ys_ = f"{y:{floatfmt}}" if isinstance(y, float) else str(y)
        pairs.append(f"{x}={ys_}")
    return f"{name}: " + " ".join(pairs)


def banner(tag: str, text: str) -> str:
    """Prefix every line with a ``[tag]`` marker for grep-ability."""
    return "\n".join(f"[{tag}] {line}" for line in text.splitlines())
