"""Recall-vs-performance curves.

The paper controls recall through the candidate-list size (graph methods)
or ``nprobe`` (IVF) and reports latency/throughput at matched recall.  This
module sweeps those knobs and interpolates operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..data.groundtruth import recall as recall_of

__all__ = ["OperatingPoint", "sweep_candidate_sizes", "point_at_recall"]


@dataclass(frozen=True)
class OperatingPoint:
    """One point of a recall/latency/throughput curve."""

    knob: int  # candidate-list size or nprobe
    recall: float
    mean_latency_us: float
    throughput_qps: float


def sweep_candidate_sizes(
    make_report: Callable[[int], tuple[np.ndarray, float, float]],
    knobs: Sequence[int],
    gt: np.ndarray,
) -> list[OperatingPoint]:
    """Evaluate a system at several knob values.

    ``make_report(knob)`` must return ``(ids, mean_latency_us, qps)`` for
    the full query set; recall is computed here against ``gt``.
    """
    points = []
    for knob in knobs:
        ids, lat, qps = make_report(int(knob))
        points.append(OperatingPoint(int(knob), recall_of(ids, gt), lat, qps))
    return points


def point_at_recall(
    points: Sequence[OperatingPoint], target: float
) -> OperatingPoint:
    """Smallest-knob operating point reaching ``target`` recall.

    Falls back to the highest-recall point if the target is unreachable
    (callers should report the achieved recall alongside).
    """
    if not points:
        raise ValueError("no operating points")
    eligible = [p for p in points if p.recall >= target]
    if eligible:
        return min(eligible, key=lambda p: p.knob)
    return max(points, key=lambda p: p.recall)
