"""Analysis utilities: step/latency stats, recall curves, text reports."""

from .export import records_to_csv, rows_to_csv, summary_to_json
from .recall import OperatingPoint, point_at_recall, sweep_candidate_sizes
from .report import banner, format_series, format_table
from .timeline import ascii_slot_timeline, ascii_timeline
from .stats import (
    StepStats,
    batch_step_spread,
    bubble_waste_rate,
    latency_percentiles,
    sort_time_fraction,
    step_statistics,
)

__all__ = [
    "ascii_timeline",
    "ascii_slot_timeline",
    "records_to_csv",
    "rows_to_csv",
    "summary_to_json",
    "OperatingPoint",
    "point_at_recall",
    "sweep_candidate_sizes",
    "banner",
    "format_series",
    "format_table",
    "StepStats",
    "batch_step_spread",
    "bubble_waste_rate",
    "latency_percentiles",
    "sort_time_fraction",
    "step_statistics",
]
