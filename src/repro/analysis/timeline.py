"""ASCII timeline (Gantt) rendering of serve runs.

Visualizes per-query lifecycles in a terminal, the textual analogue of the
paper's Fig. 4 (static vs dynamic batching timelines):

    q  0 |..####-|
    q  1 |..######----|
                 ^ returned with the batch (bubble)

Legend: ``.`` waiting for GPU start, ``#`` CTAs busy, ``-`` finished on
GPU but not yet returned (the query bubble under static batching).

:func:`ascii_slot_timeline` renders the *slot* view of the same run from
telemetry occupancy spans — one row per persistent-kernel slot, showing
which intervals the slot was occupied and its busy fraction.
"""

from __future__ import annotations

from ..core.serving import QueryRecord, ServeReport

__all__ = ["ascii_timeline", "ascii_slot_timeline"]


def _column_scaler(t0: float, t1: float, width: int):
    """Map a time onto a character column over ``[t0, t1]``."""
    span = max(t1 - t0, 1e-9)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) * scale)))

    return col, span


def ascii_timeline(
    report: ServeReport,
    width: int = 72,
    max_queries: int = 32,
    sort_by: str = "dispatch",
) -> str:
    """Render the first ``max_queries`` query lifecycles as ASCII rows.

    ``sort_by``: "dispatch" (scheduling order) or "id".
    """
    records = list(report.records)[: max(0, max_queries) or None]
    if not records:
        return "(no queries)"
    if sort_by == "dispatch":
        records = sorted(records, key=lambda r: (r.dispatch_us, r.query_id))
    elif sort_by == "id":
        records = sorted(records, key=lambda r: r.query_id)
    else:
        raise ValueError("sort_by must be 'dispatch' or 'id'")
    records = records[:max_queries]
    t0 = min(r.dispatch_us for r in records)
    t1 = max(r.complete_us for r in records)
    col, span = _column_scaler(t0, t1, width)

    lines = [f"timeline: {t0:.1f} .. {t1:.1f} us ({span:.1f} us span)"]
    for r in records:
        row = [" "] * width
        d, gs, ge, c = (col(r.dispatch_us), col(r.gpu_start_us),
                        col(r.gpu_end_us), col(r.complete_us))
        for x in range(d, gs):
            row[x] = "."
        for x in range(gs, max(ge, gs + 1)):
            row[x] = "#"
        for x in range(ge, c):
            row[x] = "-"
        lines.append(f"q{r.query_id:4d} |{''.join(row).rstrip()}|")
    lines.append("legend: . queued->GPU   # GPU busy   - bubble (done, not returned)")
    return "\n".join(lines)


def ascii_slot_timeline(spans, width: int = 72, max_slots: int = 32) -> str:
    """Render per-slot occupancy intervals as ASCII rows.

    ``spans`` is an iterable of slot-occupancy spans (anything with
    ``slot_id`` / ``start_us`` / ``end_us`` attributes — the telemetry
    layer's ``Telemetry.slot_timeline()`` passes its ``slot`` spans here).
    Adjacent queries on the same slot alternate ``#`` / ``=`` so back-to-back
    occupancy reads as distinct queries; ``.`` marks idle time.  Each row
    ends with the slot's busy fraction over the rendered horizon.
    """
    by_slot: dict[int, list] = {}
    for s in spans:
        if s.slot_id is None:
            continue
        by_slot.setdefault(int(s.slot_id), []).append(s)
    if not by_slot:
        return "(no slot occupancy spans)"
    t0 = min(s.start_us for ss in by_slot.values() for s in ss)
    t1 = max(s.end_us for ss in by_slot.values() for s in ss)
    col, span = _column_scaler(t0, t1, width)

    lines = [f"slot occupancy: {t0:.1f} .. {t1:.1f} us ({span:.1f} us span)"]
    for slot_id in sorted(by_slot)[:max_slots]:
        intervals = sorted(by_slot[slot_id], key=lambda s: s.start_us)
        row = ["."] * width
        busy = 0.0
        for i, s in enumerate(intervals):
            ch = "#" if i % 2 == 0 else "="
            busy += max(0.0, s.end_us - s.start_us)
            lo, hi = col(s.start_us), col(s.end_us)
            for x in range(lo, max(hi, lo + 1)):
                row[x] = ch
        util = busy / span if span > 0 else 0.0
        lines.append(f"slot {slot_id:3d} |{''.join(row)}| {100 * util:5.1f}%")
    if len(by_slot) > max_slots:
        lines.append(f"... {len(by_slot) - max_slots} more slots elided")
    lines.append("legend: #/= occupied (alternating queries)   . idle")
    return "\n".join(lines)
