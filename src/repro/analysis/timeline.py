"""ASCII timeline (Gantt) rendering of serve runs.

Visualizes per-query lifecycles in a terminal, the textual analogue of the
paper's Fig. 4 (static vs dynamic batching timelines):

    q  0 |..####-|
    q  1 |..######----|
                 ^ returned with the batch (bubble)

Legend: ``.`` waiting for GPU start, ``#`` CTAs busy, ``-`` finished on
GPU but not yet returned (the query bubble under static batching).
"""

from __future__ import annotations

from ..core.serving import QueryRecord, ServeReport

__all__ = ["ascii_timeline"]


def ascii_timeline(
    report: ServeReport,
    width: int = 72,
    max_queries: int = 32,
    sort_by: str = "dispatch",
) -> str:
    """Render the first ``max_queries`` query lifecycles as ASCII rows.

    ``sort_by``: "dispatch" (scheduling order) or "id".
    """
    records = list(report.records)[: max(0, max_queries) or None]
    if not records:
        return "(no queries)"
    if sort_by == "dispatch":
        records = sorted(records, key=lambda r: (r.dispatch_us, r.query_id))
    elif sort_by == "id":
        records = sorted(records, key=lambda r: r.query_id)
    else:
        raise ValueError("sort_by must be 'dispatch' or 'id'")
    records = records[:max_queries]
    t0 = min(r.dispatch_us for r in records)
    t1 = max(r.complete_us for r in records)
    span = max(t1 - t0, 1e-9)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) * scale)))

    lines = [f"timeline: {t0:.1f} .. {t1:.1f} us ({span:.1f} us span)"]
    for r in records:
        row = [" "] * width
        d, gs, ge, c = (col(r.dispatch_us), col(r.gpu_start_us),
                        col(r.gpu_end_us), col(r.complete_us))
        for x in range(d, gs):
            row[x] = "."
        for x in range(gs, max(ge, gs + 1)):
            row[x] = "#"
        for x in range(ge, c):
            row[x] = "-"
        lines.append(f"q{r.query_id:4d} |{''.join(row).rstrip()}|")
    lines.append("legend: . queued->GPU   # GPU busy   - bubble (done, not returned)")
    return "\n".join(lines)
