"""Latency/step statistics: percentiles, bubble waste, step distributions.

These implement the quantitative analyses of the paper's motivation section:
step-count distributions (Fig. 1/2), the batch *waste rate* (§III-A:
22.9–33.7 %), and sorting-time shares (Fig. 3/17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.serving import QueryRecord
from ..gpusim.costmodel import CostModel
from ..gpusim.trace import QueryTrace

__all__ = [
    "StepStats",
    "step_statistics",
    "batch_step_spread",
    "bubble_waste_rate",
    "sort_time_fraction",
    "latency_percentiles",
]


@dataclass(frozen=True)
class StepStats:
    """Distribution summary of per-query greedy-search step counts."""

    mean: float
    p50: float
    p99: float
    min: int
    max: int

    @property
    def max_over_mean(self) -> float:
        """The paper's Fig. 1 headline: slowest queries reach 147.9–190.2 %
        of the average step count."""
        return self.max / self.mean if self.mean else 0.0


def step_counts(traces: list[QueryTrace]) -> np.ndarray:
    """Per-query step counts (max over the query's CTAs, seed step excluded)."""
    return np.array([max(c.n_steps - 1 for c in t.ctas) for t in traces])


def step_statistics(traces: list[QueryTrace]) -> StepStats:
    """Summarize the step-count distribution of a query set (Fig. 1)."""
    if not traces:
        raise ValueError("need at least one trace")
    s = step_counts(traces)
    return StepStats(
        mean=float(s.mean()),
        p50=float(np.percentile(s, 50)),
        p99=float(np.percentile(s, 99)),
        min=int(s.min()),
        max=int(s.max()),
    )


def batch_step_spread(
    traces: list[QueryTrace], batch_size: int
) -> list[tuple[int, int, float]]:
    """Per-batch (min_steps, max_steps, slowest/fastest ratio) — Fig. 2.

    Queries are grouped into batches in submission order (as a serving
    system would form them).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    s = step_counts(traces)
    out = []
    for lo in range(0, len(s), batch_size):
        chunk = s[lo : lo + batch_size]
        if len(chunk) < 2:
            continue
        mn, mx = int(chunk.min()), int(chunk.max())
        out.append((mn, mx, mx / mn if mn else float("inf")))
    return out


def bubble_waste_rate(records: list[QueryRecord]) -> float:
    """Fraction of reserved GPU time wasted waiting on batch stragglers.

    For each query, ``bubble = batch_return − own_gpu_end``; the waste rate
    is total bubble over total slot-reserved time (gpu time + bubble),
    matching §III-A's "compared to the average latency of active queries,
    the waste rate ranges from 22.9 % to 33.7 %".
    """
    if not records:
        return 0.0
    bubble = np.array([r.bubble_us for r in records])
    active = np.array([max(r.gpu_end_us - r.gpu_start_us, 0.0) for r in records])
    denom = float((bubble + active).sum())
    return float(bubble.sum()) / denom if denom > 0 else 0.0


def sort_time_fraction(
    traces: list[QueryTrace], cost_model: CostModel
) -> float:
    """Mean share of search time spent in candidate-list sorting (Fig. 3)."""
    if not traces:
        raise ValueError("need at least one trace")
    fracs = [cost_model.query_cost_summary(t).sort_fraction for t in traces]
    return float(np.mean(fracs))


def latency_percentiles(
    records: list[QueryRecord], qs: tuple[float, ...] = (50, 90, 99)
) -> dict[float, float]:
    """Service-latency percentiles of a serve run."""
    lat = np.array([r.service_latency_us for r in records])
    return {q: float(np.percentile(lat, q)) for q in qs}
