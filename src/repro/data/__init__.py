"""Vector data substrate: metrics, synthetic corpora, ground truth, IO."""

from .datasets import (
    DATASETS,
    Dataset,
    DatasetSpec,
    dataset_names,
    load_dataset,
    load_real_dataset,
)
from .groundtruth import exact_knn, recall, recall_per_query
from .io import read_bvecs, read_fvecs, read_ivecs, write_fvecs, write_ivecs
from .metrics import METRICS, distance_one, normalize, pairwise_distances, query_distances
from .synthetic import (
    gaussian_mixture,
    hypersphere_mixture,
    latent_mixture,
    split_queries,
    uniform_cube,
)
from .workload import QueryEvent, closed_loop, poisson_arrivals, uniform_arrivals

__all__ = [
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "load_real_dataset",
    "exact_knn",
    "recall",
    "recall_per_query",
    "METRICS",
    "distance_one",
    "normalize",
    "pairwise_distances",
    "query_distances",
    "gaussian_mixture",
    "hypersphere_mixture",
    "latent_mixture",
    "split_queries",
    "uniform_cube",
    "read_bvecs",
    "read_fvecs",
    "read_ivecs",
    "write_fvecs",
    "write_ivecs",
    "QueryEvent",
    "closed_loop",
    "poisson_arrivals",
    "uniform_arrivals",
]
