"""Exact k-NN ground truth and recall evaluation.

Recall is defined exactly as in the paper (§II-A):

    recall = |K_approximate ∩ K_truth| / |K_truth|

computed per query and averaged over the query set.
"""

from __future__ import annotations

import numpy as np

from .metrics import blocked_pairwise

__all__ = ["exact_knn", "recall", "recall_per_query"]


def exact_knn(
    queries: np.ndarray,
    points: np.ndarray,
    k: int,
    metric: str = "l2",
    block: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Brute-force k nearest neighbours.

    Returns ``(indices, distances)`` of shape ``(n_queries, k)``, sorted by
    ascending distance.  Blocked over queries so memory stays bounded.
    """
    points = np.asarray(points, dtype=np.float32)
    queries = np.asarray(queries, dtype=np.float32)
    if queries.ndim == 1:
        queries = queries[None, :]
    if not 0 < k <= points.shape[0]:
        raise ValueError(f"k must be in [1, {points.shape[0]}], got {k}")
    nq = queries.shape[0]
    idx = np.empty((nq, k), dtype=np.int64)
    dst = np.empty((nq, k), dtype=np.float32)
    for lo, d in blocked_pairwise(queries, points, metric, block=block):
        hi = lo + d.shape[0]
        if k < d.shape[1]:
            part = np.argpartition(d, k - 1, axis=1)[:, :k]
        else:
            part = np.tile(np.arange(d.shape[1]), (d.shape[0], 1))
        pd = np.take_along_axis(d, part, axis=1)
        order = np.argsort(pd, axis=1, kind="stable")
        idx[lo:hi] = np.take_along_axis(part, order, axis=1)
        dst[lo:hi] = np.take_along_axis(pd, order, axis=1)
    return idx, dst


def recall_per_query(found: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-query recall of ``found`` ids against ``truth`` ids.

    ``found`` may contain ``-1`` padding (queries that returned fewer than k
    results); padding never matches.  Rows are treated as sets, matching the
    paper's definition.
    """
    found = np.asarray(found)
    truth = np.asarray(truth)
    if found.ndim != 2 or truth.ndim != 2:
        raise ValueError("found and truth must be 2-D (n_queries, k)")
    if found.shape[0] != truth.shape[0]:
        raise ValueError("found and truth must have the same number of queries")
    k = truth.shape[1]
    out = np.empty(found.shape[0], dtype=np.float64)
    for i in range(found.shape[0]):
        f = found[i]
        hits = np.intersect1d(f[f >= 0], truth[i]).size
        out[i] = hits / k
    return out


def recall(found: np.ndarray, truth: np.ndarray) -> float:
    """Mean recall over the query set."""
    return float(recall_per_query(found, truth).mean())
