"""Vector-file IO: texmex ``.fvecs``/``.ivecs``/``.bvecs`` and ``.npz``.

SIFT1M/GIST1M ship in the texmex format (each vector is a little-endian
``int32`` dimension header followed by the payload).  These loaders let the
benchmarks run against the real corpora when the files are present; the
synthetic registry is used otherwise.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

__all__ = [
    "read_fvecs",
    "read_ivecs",
    "read_bvecs",
    "write_fvecs",
    "write_ivecs",
    "save_dataset_npz",
    "load_dataset_npz",
]


def _read_vecs(path: str | os.PathLike, dtype: np.dtype, item: int) -> np.ndarray:
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        return np.empty((0, 0), dtype=dtype)
    if raw.size < 4:
        raise ValueError(f"{path}: truncated vecs file")
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid dimension header {dim}")
    rec = 4 + dim * item
    if raw.size % rec != 0:
        raise ValueError(f"{path}: size {raw.size} not a multiple of record size {rec}")
    n = raw.size // rec
    mat = raw.reshape(n, rec)
    dims = mat[:, :4].copy().view("<i4").ravel()
    if not np.all(dims == dim):
        raise ValueError(f"{path}: inconsistent per-record dimensions")
    body = np.ascontiguousarray(mat[:, 4:])
    return body.view(dtype).reshape(n, dim).copy()


def read_fvecs(path: str | os.PathLike) -> np.ndarray:
    """Load a ``.fvecs`` file as ``(n, dim) float32``."""
    return _read_vecs(path, np.dtype("<f4"), 4)


def read_ivecs(path: str | os.PathLike) -> np.ndarray:
    """Load an ``.ivecs`` file (ground-truth ids) as ``(n, dim) int32``."""
    return _read_vecs(path, np.dtype("<i4"), 4)


def read_bvecs(path: str | os.PathLike) -> np.ndarray:
    """Load a ``.bvecs`` file as ``(n, dim) uint8``."""
    return _read_vecs(path, np.dtype("u1"), 1)


def _write_vecs(path: str | os.PathLike, arr: np.ndarray, dtype: np.dtype) -> None:
    arr = np.ascontiguousarray(arr, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D array")
    n, dim = arr.shape
    header = np.full((n, 1), dim, dtype="<i4")
    with open(path, "wb") as f:
        out = np.empty((n, 4 + arr.itemsize * dim), dtype=np.uint8)
        out[:, :4] = header.view(np.uint8).reshape(n, 4)
        out[:, 4:] = arr.view(np.uint8).reshape(n, arr.itemsize * dim)
        out.tofile(f)


def write_fvecs(path: str | os.PathLike, arr: np.ndarray) -> None:
    """Write ``(n, dim)`` float data in texmex ``.fvecs`` format."""
    _write_vecs(path, arr, np.dtype("<f4"))


def write_ivecs(path: str | os.PathLike, arr: np.ndarray) -> None:
    """Write ``(n, dim)`` int data in texmex ``.ivecs`` format."""
    _write_vecs(path, arr, np.dtype("<i4"))


def save_dataset_npz(
    path: str | os.PathLike,
    base: np.ndarray,
    queries: np.ndarray,
    gt: np.ndarray | None = None,
    metric: str = "l2",
) -> None:
    """Persist a (base, queries, ground-truth) triple as compressed npz."""
    payload = {"base": base, "queries": queries, "metric": np.array(metric)}
    if gt is not None:
        payload["gt"] = gt
    np.savez_compressed(Path(path), **payload)


def load_dataset_npz(path: str | os.PathLike):
    """Load a dataset saved by :func:`save_dataset_npz`.

    Returns ``(base, queries, gt_or_None, metric)``.
    """
    with np.load(Path(path), allow_pickle=False) as z:
        base = z["base"]
        queries = z["queries"]
        gt = z["gt"] if "gt" in z.files else None
        metric = str(z["metric"]) if "metric" in z.files else "l2"
    return base, queries, gt, metric
