"""Synthetic vector dataset generators.

The paper evaluates on SIFT1M, GIST1M, GLoVe200 and NYTimes.  Those corpora
are not available offline, so we generate synthetic stand-ins with the same
dimensionality and metric (DESIGN.md §2).  Two properties of real embedding
corpora matter for reproducing the paper's effects and are engineered in:

* **moderate intrinsic dimensionality** — real descriptors live near a
  low-dimensional manifold, which is what makes proximity graphs navigable.
  We draw latent points from a Gaussian mixture in ``intrinsic_dim``
  dimensions and project them through a random linear map into the ambient
  dimension (plus small ambient noise).  The defaults yield connected
  CAGRA/NSW graphs with smooth recall-vs-candidate-list curves.
* **cluster structure with skewed populations** — Zipf-weighted mixture
  components give queries different search depths, reproducing the
  heavy-tailed step distributions behind the paper's query-bubble analysis
  (Fig. 1/2: max steps ≈ 148–190 % of the mean).
"""

from __future__ import annotations

import numpy as np

from .metrics import normalize

__all__ = [
    "latent_mixture",
    "gaussian_mixture",
    "hypersphere_mixture",
    "uniform_cube",
    "split_queries",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def latent_mixture(
    n: int,
    dim: int,
    n_clusters: int = 48,
    intrinsic_dim: int | None = None,
    cluster_std: float = 0.5,
    ambient_noise: float = 0.12,
    zipf_exponent: float = 0.7,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Latent Gaussian mixture projected into ``dim`` ambient dimensions.

    The calibrated defaults (intrinsic 18, std 0.5, noise 0.12) produce,
    at 4–20 k points with degree-16..32 graphs, recall@10 rising from ~0.85
    at candidate list 16 to ~1.0 at 128 — the operating curve the paper's
    experiments sweep.
    """
    if n <= 0 or dim <= 0:
        raise ValueError("n and dim must be positive")
    if intrinsic_dim is None:
        intrinsic_dim = min(18, dim)  # calibrated default, clamped for tiny dims
    if intrinsic_dim <= 0 or intrinsic_dim > dim:
        raise ValueError("need 0 < intrinsic_dim <= dim")
    if n_clusters <= 0:
        raise ValueError("n_clusters must be positive")
    rng = _rng(seed)
    n_clusters = min(n_clusters, n)
    centers = rng.normal(0.0, 1.0, size=(n_clusters, intrinsic_dim))
    weights = 1.0 / np.arange(1, n_clusters + 1) ** zipf_exponent
    weights /= weights.sum()
    labels = rng.choice(n_clusters, size=n, p=weights)
    z = centers[labels] + rng.normal(0.0, cluster_std, size=(n, intrinsic_dim))
    proj = rng.normal(0.0, 1.0, size=(intrinsic_dim, dim)) / np.sqrt(intrinsic_dim)
    x = z @ proj
    if ambient_noise > 0:
        x += rng.normal(0.0, ambient_noise, size=(n, dim))
    return np.ascontiguousarray(x, dtype=np.float32)


def gaussian_mixture(
    n: int,
    dim: int,
    n_clusters: int = 48,
    cluster_std: float = 0.5,
    intrinsic_dim: int | None = None,
    ambient_noise: float = 0.12,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """SIFT/GIST-like corpus (L2 metric): see :func:`latent_mixture`."""
    return latent_mixture(
        n,
        dim,
        n_clusters=n_clusters,
        intrinsic_dim=intrinsic_dim,
        cluster_std=cluster_std,
        ambient_noise=ambient_noise,
        seed=seed,
    )


def hypersphere_mixture(
    n: int,
    dim: int,
    n_clusters: int = 48,
    intrinsic_dim: int | None = None,
    cluster_std: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """GLoVe/NYTimes-like corpus: latent mixture normalized to the unit
    sphere (cosine metric)."""
    x = latent_mixture(
        n,
        dim,
        n_clusters=n_clusters,
        intrinsic_dim=intrinsic_dim,
        cluster_std=cluster_std,
        seed=seed,
    )
    return normalize(x, copy=False)


def uniform_cube(
    n: int, dim: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Uniform points in the unit cube — a structureless control."""
    if n <= 0 or dim <= 0:
        raise ValueError("n and dim must be positive")
    rng = _rng(seed)
    return rng.random((n, dim), dtype=np.float32)


def split_queries(
    points: np.ndarray, n_queries: int, seed: int | np.random.Generator | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``points`` into (base, queries) with disjoint rows.

    Mirrors the texmex convention where the query set is drawn from the
    same distribution as the base set but is not part of the index.
    """
    n = points.shape[0]
    if not 0 < n_queries < n:
        raise ValueError("n_queries must be in (0, len(points))")
    rng = _rng(seed)
    perm = rng.permutation(n)
    q_idx, b_idx = perm[:n_queries], perm[n_queries:]
    return points[b_idx], points[q_idx]
