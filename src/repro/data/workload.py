"""Query arrival workloads for the serving experiments.

The latency/throughput experiments (Figs. 10–15) serve a stream of queries.
Two standard regimes:

* **closed loop** — the next batch is dispatched the instant the previous
  one finishes (this is how the paper measures peak throughput);
* **open loop** — queries arrive by a Poisson (or deterministic) process and
  wait in a queue; end-to-end latency then includes *batch accumulation
  time*, the cost the paper attributes to large batches in online serving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QueryEvent", "closed_loop", "poisson_arrivals", "uniform_arrivals"]


@dataclass(frozen=True)
class QueryEvent:
    """One query submission: which query vector, and when it arrives."""

    query_id: int
    arrival_us: float


def closed_loop(n_queries: int) -> list[QueryEvent]:
    """All queries available at t=0 (peak-throughput measurement)."""
    if n_queries < 0:
        raise ValueError("n_queries must be non-negative")
    return [QueryEvent(i, 0.0) for i in range(n_queries)]


def poisson_arrivals(
    n_queries: int,
    rate_qps: float,
    seed: int | np.random.Generator | None = 0,
) -> list[QueryEvent]:
    """Poisson arrival process with mean rate ``rate_qps`` (queries/second).

    Arrival timestamps are in microseconds, matching the simulator clock.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    gaps_us = rng.exponential(1e6 / rate_qps, size=n_queries)
    times = np.cumsum(gaps_us)
    return [QueryEvent(i, float(t)) for i, t in enumerate(times)]


def uniform_arrivals(n_queries: int, rate_qps: float) -> list[QueryEvent]:
    """Deterministic arrivals with fixed inter-arrival gap."""
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    gap = 1e6 / rate_qps
    return [QueryEvent(i, i * gap) for i in range(n_queries)]
