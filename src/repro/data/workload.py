"""Query arrival workloads: declarative arrival processes + traffic specs.

The latency/throughput experiments (Figs. 10–15) serve a stream of queries.
Two standard regimes:

* **closed loop** — the next batch is dispatched the instant the previous
  one finishes (this is how the paper measures peak throughput);
* **open loop** — queries arrive by an external process and wait in a
  queue; end-to-end latency then includes *batch accumulation time*, the
  cost the paper attributes to large batches in online serving.

The open-loop side is a first-class, declarative API (docs/load_testing.md):

* :class:`ArrivalProcess` subclasses (:class:`ClosedLoop`,
  :class:`Uniform`, :class:`Poisson`, :class:`Diurnal`, :class:`Bursty`,
  :class:`TraceReplay`) are frozen, seedable, JSON-round-trippable
  descriptions of *when queries arrive*;
* :class:`TrafficSpec` bundles a process with admission control (relative
  deadlines, queue-depth shedding) — *what happens when they arrive too
  fast*.

Everything :class:`~repro.core.serving.ServeConfig.workload` accepts goes
through :func:`resolve_workload`; a bare ``list[QueryEvent]`` keeps working
as a thin adapter (it is the fully-materialized form every process lowers
to).  The legacy helpers (:func:`closed_loop`, :func:`poisson_arrivals`,
:func:`uniform_arrivals`) remain and produce bit-identical streams.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

__all__ = [
    "QueryEvent",
    "ArrivalProcess",
    "ClosedLoop",
    "Uniform",
    "Poisson",
    "Diurnal",
    "Bursty",
    "Spike",
    "TraceReplay",
    "TrafficSpec",
    "resolve_workload",
    "closed_loop",
    "poisson_arrivals",
    "uniform_arrivals",
]


@dataclass(frozen=True)
class QueryEvent:
    """One query submission: which query vector, and when it arrives."""

    query_id: int
    arrival_us: float


# --------------------------------------------------------------- legacy API
def closed_loop(n_queries: int) -> list[QueryEvent]:
    """All queries available at t=0 (peak-throughput measurement)."""
    if n_queries < 0:
        raise ValueError("n_queries must be non-negative")
    return [QueryEvent(i, 0.0) for i in range(n_queries)]


def poisson_arrivals(
    n_queries: int,
    rate_qps: float,
    seed: int | np.random.Generator | None = 0,
) -> list[QueryEvent]:
    """Poisson arrival process with mean rate ``rate_qps`` (queries/second).

    Arrival timestamps are in microseconds, matching the simulator clock.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    gaps_us = rng.exponential(1e6 / rate_qps, size=n_queries)
    times = np.cumsum(gaps_us)
    return [QueryEvent(i, float(t)) for i, t in enumerate(times)]


def uniform_arrivals(n_queries: int, rate_qps: float) -> list[QueryEvent]:
    """Deterministic arrivals with fixed inter-arrival gap."""
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    gap = 1e6 / rate_qps
    return [QueryEvent(i, i * gap) for i in range(n_queries)]


# ------------------------------------------------------------ process classes
_PROCESSES: dict[str, type["ArrivalProcess"]] = {}


@dataclass(frozen=True)
class ArrivalProcess:
    """Declarative description of a query-arrival process.

    Subclasses are frozen dataclasses: hashable, comparable, and
    JSON-round-trippable through :meth:`to_dict`/:meth:`from_dict` (the
    ``kind`` tag dispatches reconstruction).  Stochastic processes carry
    their own ``seed`` so a spec fully determines its stream;
    :meth:`events` accepts an override seed for sweeps.
    """

    #: registry tag; each concrete subclass sets its own.
    kind: ClassVar[str] = "abstract"

    def __init_subclass__(cls, **kw) -> None:
        super().__init_subclass__(**kw)
        if "kind" in cls.__dict__:
            _PROCESSES[cls.kind] = cls

    # ------------------------------------------------------------- generate
    def events(self, n_queries: int, seed: int | None = None) -> list[QueryEvent]:
        """Materialize ``n_queries`` arrival events (ids 0..n-1, time order)."""
        raise NotImplementedError

    @property
    def mean_qps(self) -> float | None:
        """Long-run mean offered rate (None for closed loop)."""
        return None

    # ---------------------------------------------------------- round-trip
    def to_dict(self) -> dict:
        d = {"kind": self.kind}
        d.update(dataclasses.asdict(self))
        return d

    @staticmethod
    def from_dict(data: dict) -> "ArrivalProcess":
        data = dict(data)
        kind = data.pop("kind", None)
        if kind not in _PROCESSES:
            raise ValueError(
                f"unknown arrival-process kind {kind!r}; known: {sorted(_PROCESSES)}"
            )
        cls = _PROCESSES[kind]
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"{kind}: unknown fields {sorted(unknown)}")
        for f in dataclasses.fields(cls):
            # JSON turns tuples into lists; restore tuple-typed fields.
            if f.name in data and isinstance(data[f.name], list):
                data[f.name] = tuple(data[f.name])
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_json(text: str | bytes) -> "ArrivalProcess":
        return ArrivalProcess.from_dict(json.loads(text))

    # --------------------------------------------------------------- parsing
    @staticmethod
    def parse(text: str) -> "ArrivalProcess":
        """Parse a compact CLI form: ``closed``, ``uniform:R``,
        ``poisson:R``, ``diurnal:BASE:PEAK[:PERIOD_S]``,
        ``bursty:BASE:BURST``, ``spike:BASE:AT_US:N[:WIDTH_US]``
        (rates in QPS)."""
        parts = text.split(":")
        name, args = parts[0], [float(p) for p in parts[1:]]
        if name in ("closed", "closed_loop"):
            return ClosedLoop()
        if name == "uniform" and len(args) == 1:
            return Uniform(rate_qps=args[0])
        if name == "poisson" and len(args) == 1:
            return Poisson(rate_qps=args[0])
        if name == "diurnal" and len(args) in (2, 3):
            period = args[2] if len(args) == 3 else 1.0
            return Diurnal(base_qps=args[0], peak_qps=args[1], period_s=period)
        if name == "bursty" and len(args) == 2:
            return Bursty(base_qps=args[0], burst_qps=args[1])
        if name == "spike" and len(args) in (3, 4):
            width = args[3] if len(args) == 4 else 10_000.0
            return Spike(
                base_qps=args[0],
                spikes=((args[1], int(args[2]), width),),
            )
        raise ValueError(
            f"cannot parse arrival process {text!r}; expected closed | "
            f"uniform:R | poisson:R | diurnal:BASE:PEAK[:PERIOD_S] | "
            f"bursty:BASE:BURST | spike:BASE:AT_US:N[:WIDTH_US]"
        )


@dataclass(frozen=True)
class ClosedLoop(ArrivalProcess):
    """All queries available at t=0 (the peak-throughput regime)."""

    kind: ClassVar[str] = "closed_loop"

    def events(self, n_queries: int, seed: int | None = None) -> list[QueryEvent]:
        return closed_loop(n_queries)


@dataclass(frozen=True)
class Uniform(ArrivalProcess):
    """Deterministic arrivals with fixed inter-arrival gap."""

    rate_qps: float
    kind: ClassVar[str] = "uniform"

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")

    @property
    def mean_qps(self) -> float:
        return self.rate_qps

    def events(self, n_queries: int, seed: int | None = None) -> list[QueryEvent]:
        return uniform_arrivals(n_queries, self.rate_qps)


@dataclass(frozen=True)
class Poisson(ArrivalProcess):
    """Memoryless arrivals at mean rate ``rate_qps``."""

    rate_qps: float
    seed: int = 0
    kind: ClassVar[str] = "poisson"

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")

    @property
    def mean_qps(self) -> float:
        return self.rate_qps

    def events(self, n_queries: int, seed: int | None = None) -> list[QueryEvent]:
        return poisson_arrivals(
            n_queries, self.rate_qps, self.seed if seed is None else seed
        )


@dataclass(frozen=True)
class Diurnal(ArrivalProcess):
    """Non-homogeneous Poisson with a sinusoidal day/night rate.

    The instantaneous rate swings between ``base_qps`` (start of period,
    "night") and ``peak_qps`` (mid-period, "day"):

        λ(t) = base + (peak − base) · ½(1 − cos 2π(t/period + phase))

    ``period_s`` is the modeled day compressed into simulation time (the
    default packs one full diurnal cycle into one second of simulated
    traffic).  Sampled by thinning at ``peak_qps``.
    """

    base_qps: float
    peak_qps: float
    period_s: float = 1.0
    phase: float = 0.0
    seed: int = 0
    kind: ClassVar[str] = "diurnal"

    def __post_init__(self) -> None:
        if self.base_qps <= 0 or self.peak_qps < self.base_qps:
            raise ValueError("need 0 < base_qps <= peak_qps")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    @property
    def mean_qps(self) -> float:
        """Whole-period mean of the sinusoidal rate."""
        return 0.5 * (self.base_qps + self.peak_qps)

    def rate_at(self, t_us) -> np.ndarray:
        """Instantaneous rate λ(t) in QPS (vectorized over ``t_us``)."""
        frac = np.asarray(t_us, dtype=np.float64) / (self.period_s * 1e6) + self.phase
        return self.base_qps + (self.peak_qps - self.base_qps) * 0.5 * (
            1.0 - np.cos(2.0 * np.pi * frac)
        )

    def events(self, n_queries: int, seed: int | None = None) -> list[QueryEvent]:
        if n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        times: list[float] = []
        t = 0.0
        chunk = max(256, n_queries)
        while len(times) < n_queries:
            cand = t + np.cumsum(rng.exponential(1e6 / self.peak_qps, size=chunk))
            keep = rng.random(chunk) * self.peak_qps <= self.rate_at(cand)
            times.extend(cand[keep].tolist())
            t = float(cand[-1])
        return [QueryEvent(i, ts) for i, ts in enumerate(times[:n_queries])]


@dataclass(frozen=True)
class Bursty(ArrivalProcess):
    """Two-state MMPP: exponential idle/burst phases with distinct rates.

    The process alternates an *idle* phase (rate ``base_qps``, mean length
    ``mean_idle_us``) with a *burst* phase (rate ``burst_qps``, mean length
    ``mean_burst_us``); phase lengths are exponential, and within a phase
    arrivals are Poisson at the phase rate — the standard Markov-modulated
    stand-in for flash-crowd traffic.
    """

    base_qps: float
    burst_qps: float
    mean_burst_us: float = 50_000.0
    mean_idle_us: float = 200_000.0
    seed: int = 0
    kind: ClassVar[str] = "bursty"

    def __post_init__(self) -> None:
        if self.base_qps <= 0 or self.burst_qps < self.base_qps:
            raise ValueError("need 0 < base_qps <= burst_qps")
        if self.mean_burst_us <= 0 or self.mean_idle_us <= 0:
            raise ValueError("phase lengths must be positive")

    @property
    def mean_qps(self) -> float:
        """Stationary mean rate (phase-length-weighted)."""
        total = self.mean_idle_us + self.mean_burst_us
        return (
            self.base_qps * self.mean_idle_us + self.burst_qps * self.mean_burst_us
        ) / total

    def events(self, n_queries: int, seed: int | None = None) -> list[QueryEvent]:
        if n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        times: list[float] = []
        t = 0.0
        burst = False
        while len(times) < n_queries:
            rate = self.burst_qps if burst else self.base_qps
            dwell = rng.exponential(self.mean_burst_us if burst else self.mean_idle_us)
            # Poisson count in the phase window, arrivals uniform given the
            # count — exact for a Poisson process restricted to a window.
            m = rng.poisson(rate * dwell * 1e-6)
            if m:
                times.extend(np.sort(t + rng.random(m) * dwell).tolist())
            t += dwell
            burst = not burst
        return [QueryEvent(i, ts) for i, ts in enumerate(times[:n_queries])]


@dataclass(frozen=True)
class Spike(ArrivalProcess):
    """Poisson baseline plus deterministic query spikes at fixed instants.

    Each spike ``(at_us, count, width_us)`` injects exactly ``count``
    arrivals evenly spaced across ``[at_us, at_us + width_us)`` — the
    query-side mirror of an update storm, placed at a *known* simulation
    time so chaos experiments can align query pressure with graph churn
    (:mod:`repro.streaming`).  Only the baseline is stochastic; the spikes
    land at the same instants for every seed.
    """

    base_qps: float
    spikes: tuple[tuple[float, int, float], ...] = ()
    seed: int = 0
    kind: ClassVar[str] = "spike"

    def __post_init__(self) -> None:
        if self.base_qps <= 0:
            raise ValueError("base_qps must be positive")
        norm = []
        for sp in self.spikes:
            at, count, width = sp
            if at < 0 or width <= 0:
                raise ValueError("spike needs at_us >= 0 and width_us > 0")
            if int(count) < 1:
                raise ValueError("spike count must be >= 1")
            norm.append((float(at), int(count), float(width)))
        object.__setattr__(self, "spikes", tuple(norm))

    @property
    def mean_qps(self) -> float:
        """Baseline rate (spikes are transient and excluded)."""
        return self.base_qps

    def events(self, n_queries: int, seed: int | None = None) -> list[QueryEvent]:
        if n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        gaps = rng.exponential(1e6 / self.base_qps, size=n_queries)
        times = np.cumsum(gaps)
        burst = [
            at + i * width / count
            for at, count, width in self.spikes
            for i in range(count)
        ]
        merged = np.sort(np.concatenate([times, np.asarray(burst, dtype=np.float64)]))
        return [QueryEvent(i, float(t)) for i, t in enumerate(merged[:n_queries])]


@dataclass(frozen=True)
class TraceReplay(ArrivalProcess):
    """Replay explicit arrival timestamps (e.g. a production trace).

    ``query_ids`` defaults to 0..n−1 in time order; pass explicit ids to
    preserve a trace's own numbering (the ``list[QueryEvent]`` adapter
    does).  ``events(n)`` replays the first ``n`` entries.
    """

    arrival_us: tuple[float, ...]
    query_ids: tuple[int, ...] | None = None
    kind: ClassVar[str] = "trace"

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrival_us", tuple(float(t) for t in self.arrival_us))
        if any(t < 0 for t in self.arrival_us):
            raise ValueError("arrival timestamps must be non-negative")
        if self.query_ids is not None:
            object.__setattr__(
                self, "query_ids", tuple(int(q) for q in self.query_ids)
            )
            if len(self.query_ids) != len(self.arrival_us):
                raise ValueError("query_ids must match arrival_us in length")

    @property
    def mean_qps(self) -> float | None:
        if len(self.arrival_us) < 2:
            return None
        span = max(self.arrival_us) - min(self.arrival_us)
        return (len(self.arrival_us) - 1) / (span * 1e-6) if span > 0 else None

    @classmethod
    def from_events(cls, events: "list[QueryEvent]") -> "TraceReplay":
        """Thin adapter: wrap a materialized event list, preserving ids."""
        return cls(
            arrival_us=tuple(e.arrival_us for e in events),
            query_ids=tuple(e.query_id for e in events),
        )

    def events(self, n_queries: int | None = None, seed: int | None = None) -> list[QueryEvent]:
        n = len(self.arrival_us) if n_queries is None else n_queries
        if n > len(self.arrival_us):
            raise ValueError(
                f"trace holds {len(self.arrival_us)} arrivals, {n} requested"
            )
        order = np.argsort(np.asarray(self.arrival_us[:n]), kind="stable")
        ids = self.query_ids[:n] if self.query_ids is not None else tuple(range(n))
        return [QueryEvent(ids[i], self.arrival_us[i]) for i in order]


# --------------------------------------------------------------- TrafficSpec
@dataclass(frozen=True)
class TrafficSpec:
    """An arrival process plus admission control: the full workload contract.

    * ``process`` — when queries arrive;
    * ``n_queries`` — events to generate (None → one per served query);
    * ``deadline_us`` — relative drop deadline: a query not dispatched
      within this of its arrival is shed (accounted as a *drop*);
    * ``max_queue_depth`` — admission limit: an arrival finding this many
      queries already waiting is shed at the door (also a drop);
    * ``seed`` — overrides the process's own seed.

    Accepted anywhere :class:`~repro.core.serving.ServeConfig.workload` is.
    Admission control needs an admission queue, so it is honoured by the
    dynamic-batching engines (ALGAS and the fleet driver), by
    :class:`~repro.core.cluster.ReplicatedServer`, and by
    :class:`~repro.core.cluster.ShardedServer` (one admission queue per
    shard; the quorum merge counts a query as dropped only when *no*
    shard answered it).  The static baselines reject specs that set it.
    """

    process: ArrivalProcess
    n_queries: int | None = None
    deadline_us: float | None = None
    max_queue_depth: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.process, ArrivalProcess):
            raise TypeError(
                f"process must be an ArrivalProcess, got {type(self.process).__name__}"
            )
        if self.n_queries is not None and self.n_queries < 0:
            raise ValueError("n_queries must be non-negative")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ValueError("deadline_us must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")

    @property
    def has_admission(self) -> bool:
        return self.deadline_us is not None or self.max_queue_depth is not None

    def events(self, n_default: int) -> list[QueryEvent]:
        n = n_default if self.n_queries is None else self.n_queries
        return self.process.events(n, seed=self.seed)

    # ---------------------------------------------------------- round-trip
    def to_dict(self) -> dict:
        return {
            "process": self.process.to_dict(),
            "n_queries": self.n_queries,
            "deadline_us": self.deadline_us,
            "max_queue_depth": self.max_queue_depth,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: dict) -> "TrafficSpec":
        data = dict(data)
        return TrafficSpec(
            process=ArrivalProcess.from_dict(data["process"]),
            n_queries=data.get("n_queries"),
            deadline_us=data.get("deadline_us"),
            max_queue_depth=data.get("max_queue_depth"),
            seed=data.get("seed"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_json(text: str | bytes) -> "TrafficSpec":
        return TrafficSpec.from_dict(json.loads(text))


def resolve_workload(
    workload, n_queries: int
) -> tuple[list[QueryEvent], TrafficSpec | None]:
    """Lower any accepted ``ServeConfig.workload`` form to event list + spec.

    Returns ``(events, spec)`` where ``spec`` is non-None only when the
    workload carries admission-control fields the engine must honour.

    * ``None`` → closed loop over the served queries;
    * ``list[QueryEvent]`` → used as-is (the thin back-compat adapter);
    * ``ArrivalProcess`` → ``process.events(n_queries)``;
    * ``TrafficSpec`` → its events plus itself.
    """
    if workload is None:
        return closed_loop(n_queries), None
    if isinstance(workload, TrafficSpec):
        return workload.events(n_queries), (workload if workload.has_admission else None)
    if isinstance(workload, ArrivalProcess):
        return workload.events(n_queries), None
    if isinstance(workload, (list, tuple)):
        events = list(workload)
        for ev in events:
            if not isinstance(ev, QueryEvent):
                raise TypeError(
                    f"workload list must contain QueryEvent, got {type(ev).__name__}"
                )
        if len(events) != n_queries:
            raise ValueError(
                f"workload supplies {len(events)} events for {n_queries} queries"
            )
        return events, None
    raise TypeError(
        f"workload must be a TrafficSpec, ArrivalProcess, or list[QueryEvent]; "
        f"got {type(workload).__name__}"
    )
