"""Distance metrics for vector search.

ALGAS (and the graph indexes it searches) supports Euclidean distance and
cosine similarity (Table III of the paper).  Everything in this module is
expressed as a *distance* to minimize: squared Euclidean distance for
``"l2"`` and ``1 - cosine_similarity`` for ``"cosine"``.

All kernels are NumPy-vectorized and blocked so that pairwise computations
over tens of thousands of vectors stay cache-friendly (see the hpc guide:
vectorize, avoid copies, mind cache effects).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "METRICS",
    "normalize",
    "pairwise_distances",
    "pair_distances",
    "query_distances",
    "distance_one",
    "blocked_pairwise",
]

#: Supported metric names.
METRICS = ("l2", "cosine")


def _check_metric(metric: str) -> str:
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; expected one of {METRICS}")
    return metric


def normalize(x: np.ndarray, copy: bool = True) -> np.ndarray:
    """Return ``x`` with unit-L2-norm rows (zero rows are left untouched).

    Cosine distance on normalized vectors reduces to ``1 - dot``, which is
    what the GPU kernels in the paper compute; we normalize once at index
    build time rather than per distance evaluation.
    """
    x = np.array(x, dtype=np.float32, copy=copy)
    if x.ndim == 1:
        n = float(np.linalg.norm(x))
        if n > 0.0:
            x /= n
        return x
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    np.maximum(norms, np.finfo(np.float32).tiny, out=norms)
    x /= norms
    return x


def distance_one(a: np.ndarray, b: np.ndarray, metric: str = "l2") -> float:
    """Distance between two single vectors."""
    _check_metric(metric)
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if metric == "l2":
        d = a - b
        return float(np.dot(d, d))
    na = float(np.linalg.norm(a)) or 1.0
    nb = float(np.linalg.norm(b)) or 1.0
    return float(1.0 - np.dot(a, b) / (na * nb))


def query_distances(query: np.ndarray, points: np.ndarray, metric: str = "l2") -> np.ndarray:
    """Distances from one query vector to each row of ``points``.

    For ``"cosine"`` the inputs are assumed already normalized (the dataset
    registry normalizes cosine datasets at load time), so the computation is
    a single matvec — exactly the arithmetic a GPU CTA performs.
    """
    _check_metric(metric)
    points = np.asarray(points, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    if metric == "l2":
        diff = points - query
        return np.einsum("ij,ij->i", diff, diff).astype(np.float32)
    return (1.0 - points @ query).astype(np.float32)


def pair_distances(
    a: np.ndarray,
    b: np.ndarray,
    metric: str = "l2",
    a_norms: np.ndarray | None = None,
    b_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise distances between matching rows of ``a`` and ``b``.

    This is the shared distance kernel of the scalar and vectorized search
    backends: the scalar path calls it with a broadcast-tiled query, the
    lockstep batch engine with per-pair gathered query rows.  Both inputs
    are materialized contiguous before the einsum, so the per-row
    accumulation order — and therefore every produced distance bit — is
    identical no matter how rows are batched (the parity suite relies on
    this for byte-identical results across backends).

    When either ``a_norms`` or ``b_norms`` (per-row squared L2 norms) is
    given, the L2 branch switches to the ``|a|^2 + |b|^2 - 2ab`` expansion
    with the missing side computed in-call — one fewer full-width pass
    than the diff form, and callers that hold fixed point sets amortize
    the norms across calls.  Both search backends pass norms, so their
    distances stay byte-identical to each other (expansion bits differ
    from diff-form bits; clamped at zero against cancellation).

    As everywhere in this module, cosine inputs are assumed normalized, so
    the cosine distance is ``1 - dot``.
    """
    _check_metric(metric)
    a = np.ascontiguousarray(a, dtype=np.float32)
    b = np.ascontiguousarray(b, dtype=np.float32)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError("a and b must be matching 2-D arrays")
    if metric == "l2":
        if a_norms is not None or b_norms is not None:
            an = a_norms if a_norms is not None else np.einsum("ij,ij->i", a, a)
            bn = b_norms if b_norms is not None else np.einsum("ij,ij->i", b, b)
            d = an + bn - 2.0 * np.einsum("ij,ij->i", a, b)
            return np.maximum(d, 0.0).astype(np.float32)
        diff = a - b
        return np.einsum("ij,ij->i", diff, diff).astype(np.float32)
    return (1.0 - np.einsum("ij,ij->i", a, b)).astype(np.float32)


def pairwise_distances(
    queries: np.ndarray, points: np.ndarray, metric: str = "l2"
) -> np.ndarray:
    """Full (len(queries) × len(points)) distance matrix.

    Uses the ``|a-b|^2 = |a|^2 - 2ab + |b|^2`` expansion for L2 so the inner
    loop is one GEMM.  Small negative values from cancellation are clamped.
    """
    _check_metric(metric)
    q = np.asarray(queries, dtype=np.float32)
    p = np.asarray(points, dtype=np.float32)
    if q.ndim == 1:
        q = q[None, :]
    if metric == "l2":
        qq = np.einsum("ij,ij->i", q, q)[:, None]
        pp = np.einsum("ij,ij->i", p, p)[None, :]
        d = qq + pp - 2.0 * (q @ p.T)
        np.maximum(d, 0.0, out=d)
        return d.astype(np.float32)
    return (1.0 - q @ p.T).astype(np.float32)


def blocked_pairwise(
    queries: np.ndarray,
    points: np.ndarray,
    metric: str = "l2",
    block: int = 1024,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(row_offset, block_distance_matrix)`` pairs.

    Blocked evaluation keeps the working set inside cache for large ``n``
    (exact kNN-graph construction does n × n work); callers reduce each
    block (argpartition) before the next is produced, so peak memory stays
    ``block × len(points)`` floats.
    """
    _check_metric(metric)
    q = np.asarray(queries, dtype=np.float32)
    if q.ndim == 1:
        q = q[None, :]
    if block <= 0:
        raise ValueError("block must be positive")
    for lo in range(0, q.shape[0], block):
        hi = min(lo + block, q.shape[0])
        yield lo, pairwise_distances(q[lo:hi], points, metric)
