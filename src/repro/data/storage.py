"""Production-scale corpus storage: chunked generation + memory-mapped IO.

The eager generators in :mod:`repro.data.synthetic` materialize the whole
corpus in one ndarray — fine at the paper's mini scales (≤ 20k points),
untenable at the 1M+ scale the load experiments target (a 1M × 960 float32
corpus is ~3.8 GB before any working copies).  This module keeps corpus
size off the Python heap:

* :class:`LatentMixtureModel` — the latent-mixture distribution as an
  explicit object (centers, Zipf weights, projection) whose per-chunk
  sampling streams are split off a :class:`numpy.random.SeedSequence`, so
  any chunk of the corpus can be (re)generated independently and the
  result is byte-identical regardless of chunk size;
* :func:`generate_memmap` — stream a model into an ``.npy`` file via
  :func:`numpy.lib.format.open_memmap`, one chunk resident at a time;
* :func:`open_fvecs_mmap` / :func:`open_bvecs_mmap` — zero-copy views of
  texmex files through a structured-dtype memmap (each record is a
  little-endian ``int32`` dim header + payload), so a 1M-point fvecs file
  opens in milliseconds and pages in on demand;
* :func:`exact_knn_big` — ground truth blocked over *points* (the eager
  :func:`~repro.data.groundtruth.exact_knn` blocks only over queries, so
  its distance blocks scale with corpus size).

The eager :func:`~repro.data.synthetic.latent_mixture` draw order is
load-bearing for every existing test corpus, so it stays untouched; the
chunked model is a parallel implementation with its own (also frozen)
draw order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from .metrics import METRICS, normalize, pairwise_distances

__all__ = [
    "LatentMixtureModel",
    "generate_memmap",
    "open_fvecs_mmap",
    "open_bvecs_mmap",
    "exact_knn_big",
]

#: default points per generation/scan chunk (~128 MB at dim=128 float32
#: stays far under that; chosen so chunk work amortizes numpy call overhead
#: while several chunks fit in cache-adjacent memory).
DEFAULT_CHUNK = 262_144


@dataclass(frozen=True)
class LatentMixtureModel:
    """The latent Gaussian mixture as a reusable, chunkable distribution.

    The shared model parameters (cluster centers, Zipf weights, the
    random projection) are drawn once from ``SeedSequence(seed)``; chunk
    ``i`` of the corpus is drawn from ``SeedSequence(seed, spawn_key=(i,))``
    — so ``sample_chunk(i)`` is independent of every other chunk and the
    corpus content depends only on ``(model params, chunk_size)``, not on
    how many chunks are materialized or in what order.
    """

    dim: int
    n_clusters: int = 48
    intrinsic_dim: int | None = None
    cluster_std: float = 0.5
    ambient_noise: float = 0.12
    zipf_exponent: float = 0.7
    normalized: bool = False
    seed: int = 0
    chunk_size: int = DEFAULT_CHUNK
    # Derived model parameters (set in __post_init__).
    _centers: np.ndarray = field(init=False, repr=False, compare=False)
    _weights: np.ndarray = field(init=False, repr=False, compare=False)
    _proj: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError("dim must be positive")
        idim = self.intrinsic_dim
        if idim is None:
            idim = min(18, self.dim)  # same calibrated default as the eager path
            object.__setattr__(self, "intrinsic_dim", idim)
        if not 0 < idim <= self.dim:
            raise ValueError("need 0 < intrinsic_dim <= dim")
        if self.n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        centers = rng.normal(0.0, 1.0, size=(self.n_clusters, idim))
        weights = 1.0 / np.arange(1, self.n_clusters + 1) ** self.zipf_exponent
        weights /= weights.sum()
        proj = rng.normal(0.0, 1.0, size=(idim, self.dim)) / np.sqrt(idim)
        object.__setattr__(self, "_centers", centers)
        object.__setattr__(self, "_weights", weights)
        object.__setattr__(self, "_proj", proj)

    def sample_chunk(self, chunk_index: int, n: int | None = None) -> np.ndarray:
        """Generate chunk ``chunk_index`` (``n`` rows, default chunk_size)."""
        if n is None:
            n = self.chunk_size
        if n <= 0:
            raise ValueError("n must be positive")
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(chunk_index,))
        )
        labels = rng.choice(self.n_clusters, size=n, p=self._weights)
        z = self._centers[labels] + rng.normal(
            0.0, self.cluster_std, size=(n, self.intrinsic_dim)
        )
        x = z @ self._proj
        if self.ambient_noise > 0:
            x += rng.normal(0.0, self.ambient_noise, size=(n, self.dim))
        x = np.ascontiguousarray(x, dtype=np.float32)
        return normalize(x, copy=False) if self.normalized else x

    def chunks(self, n_total: int) -> Iterator[np.ndarray]:
        """Yield consecutive chunks covering ``n_total`` rows.

        Chunk boundaries are fixed by ``chunk_size``: the first
        ``n_total // chunk_size`` chunks are full, the tail partial.  A
        partial tail chunk is a *prefix* of the full chunk's draw (the
        full chunk is generated, then truncated), so growing ``n_total``
        only appends rows — it never changes existing ones.
        """
        if n_total <= 0:
            raise ValueError("n_total must be positive")
        emitted = 0
        ci = 0
        while emitted < n_total:
            take = min(self.chunk_size, n_total - emitted)
            chunk = self.sample_chunk(ci)
            yield chunk[:take] if take < self.chunk_size else chunk
            emitted += take
            ci += 1

    def sample(self, n: int) -> np.ndarray:
        """Materialize ``n`` rows eagerly (small-n convenience/testing)."""
        return np.concatenate(list(self.chunks(n)), axis=0)

    def queries(self, n_queries: int, seed_offset: int = 1_000_000) -> np.ndarray:
        """Draw a disjoint query set from the same distribution.

        Uses chunk indexes starting at ``seed_offset`` so query draws can
        never collide with base-corpus chunks.
        """
        if n_queries <= 0:
            raise ValueError("n_queries must be positive")
        out = []
        remaining = n_queries
        ci = seed_offset
        while remaining > 0:
            take = min(self.chunk_size, remaining)
            out.append(self.sample_chunk(ci, n=take))
            remaining -= take
            ci += 1
        return np.concatenate(out, axis=0)


def generate_memmap(
    path: str | os.PathLike,
    model: LatentMixtureModel,
    n: int,
    progress=None,
) -> np.ndarray:
    """Stream ``n`` rows of ``model`` into ``path`` (``.npy``); return a
    read-only memmap of the result.

    Only one chunk is resident at a time, so generating a 1M+ corpus costs
    ~``chunk_size × dim × 4`` bytes of RAM regardless of ``n``.
    """
    path = Path(path)
    out = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.float32, shape=(n, model.dim)
    )
    lo = 0
    for chunk in model.chunks(n):
        out[lo : lo + chunk.shape[0]] = chunk
        lo += chunk.shape[0]
        if progress is not None:
            progress(lo, n)
    out.flush()
    del out
    return np.load(path, mmap_mode="r")


def _open_vecs_mmap(
    path: str | os.PathLike, scalar: np.dtype, item: int
) -> np.ndarray:
    """Structured-dtype memmap view of a texmex vecs file (zero-copy)."""
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        return np.empty((0, 0), dtype=scalar)
    if size < 4:
        raise ValueError(f"{path}: truncated vecs file")
    dim = int(np.fromfile(path, dtype="<i4", count=1)[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid dimension header {dim}")
    rec = 4 + dim * item
    if size % rec != 0:
        raise ValueError(f"{path}: size {size} not a multiple of record size {rec}")
    dt = np.dtype([("dim", "<i4"), ("vec", scalar, (dim,))])
    m = np.memmap(path, dtype=dt, mode="r")
    # Validate the headers without materializing the payload: the "dim"
    # field view is strided over the mapping, paged in ~1 int per record.
    if not np.all(m["dim"] == dim):
        raise ValueError(f"{path}: inconsistent per-record dimensions")
    return m["vec"]


def open_fvecs_mmap(path: str | os.PathLike) -> np.ndarray:
    """Memory-mapped ``(n, dim) float32`` view of a ``.fvecs`` file.

    Unlike :func:`~repro.data.io.read_fvecs` this never copies the
    payload: the returned array is a strided view into the mapped file
    (read-only), so million-point files open instantly and slices page in
    on first touch.  ``np.ascontiguousarray(view[lo:hi])`` materializes a
    working block.
    """
    return _open_vecs_mmap(path, np.dtype("<f4"), 4)


def open_bvecs_mmap(path: str | os.PathLike) -> np.ndarray:
    """Memory-mapped ``(n, dim) uint8`` view of a ``.bvecs`` file."""
    return _open_vecs_mmap(path, np.dtype("u1"), 1)


def exact_knn_big(
    queries: np.ndarray,
    points: np.ndarray,
    k: int,
    metric: str = "l2",
    point_block: int = 131_072,
) -> tuple[np.ndarray, np.ndarray]:
    """Brute-force k-NN blocked over *points*, for corpora that don't fit.

    :func:`~repro.data.groundtruth.exact_knn` materializes
    ``block × len(points)`` distance blocks — at 1M points that is ~2 GB
    per 512-query block.  Here ``points`` may be any row-sliceable array
    (an eager ndarray, a memmap from :func:`generate_memmap`, or an
    :func:`open_fvecs_mmap` view); each point block is materialized,
    scored against all queries, and folded into a running top-k.

    Returns ``(indices, distances)`` sorted ascending, identical (up to
    distance ties) to the eager path.
    """
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; expected one of {METRICS}")
    queries = np.asarray(queries, dtype=np.float32)
    if queries.ndim == 1:
        queries = queries[None, :]
    n_points = points.shape[0]
    if not 0 < k <= n_points:
        raise ValueError(f"k must be in [1, {n_points}], got {k}")
    if point_block <= 0:
        raise ValueError("point_block must be positive")
    nq = queries.shape[0]
    best_d = np.full((nq, k), np.inf, dtype=np.float32)
    best_i = np.full((nq, k), -1, dtype=np.int64)
    for lo in range(0, n_points, point_block):
        hi = min(lo + point_block, n_points)
        block = np.ascontiguousarray(points[lo:hi], dtype=np.float32)
        d = pairwise_distances(queries, block, metric)
        take = min(k, d.shape[1])
        if take < d.shape[1]:
            part = np.argpartition(d, take - 1, axis=1)[:, :take]
        else:
            part = np.tile(np.arange(d.shape[1]), (nq, 1))
        pd = np.take_along_axis(d, part, axis=1)
        # Fold the block's candidates into the running top-k.
        cand_d = np.concatenate([best_d, pd], axis=1)
        cand_i = np.concatenate([best_i, part + lo], axis=1)
        sel = np.argpartition(cand_d, k - 1, axis=1)[:, :k]
        best_d = np.take_along_axis(cand_d, sel, axis=1)
        best_i = np.take_along_axis(cand_i, sel, axis=1)
    order = np.argsort(best_d, axis=1, kind="stable")
    return (
        np.take_along_axis(best_i, order, axis=1),
        np.take_along_axis(best_d, order, axis=1),
    )
