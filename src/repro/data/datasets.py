"""Dataset registry mirroring Table III of the paper.

Each entry describes one of the paper's four evaluation corpora; ``load``
materializes a scaled-down synthetic stand-in with the same dimensionality,
metric, and clustered structure (see DESIGN.md §2 for the substitution
rationale).  Ground truth is computed exactly and cached in-process.

>>> ds = load_dataset("sift1m-mini", n=5000, n_queries=100, seed=1)
>>> ds.base.shape[1], ds.metric
(128, 'l2')
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from . import synthetic
from .groundtruth import exact_knn
from .metrics import normalize

__all__ = [
    "DatasetSpec",
    "Dataset",
    "DATASETS",
    "load_dataset",
    "load_big_dataset",
    "dataset_names",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a corpus (paper Table III)."""

    name: str
    paper_name: str
    paper_vertices: int
    dim: int
    metric: str
    #: generator family: "gaussian" (L2 corpora) or "sphere" (cosine corpora)
    family: str
    #: default synthetic scale (vertices) used by tests/benches
    default_n: int = 20_000
    n_clusters: int = 48
    intrinsic_dim: int = 18

    def generate(self, n: int, seed: int = 0) -> np.ndarray:
        """Draw ``n`` base+query vectors from this spec's distribution."""
        if self.family == "gaussian":
            return synthetic.gaussian_mixture(
                n,
                self.dim,
                n_clusters=self.n_clusters,
                intrinsic_dim=self.intrinsic_dim,
                seed=seed,
            )
        if self.family == "sphere":
            return synthetic.hypersphere_mixture(
                n,
                self.dim,
                n_clusters=self.n_clusters,
                intrinsic_dim=self.intrinsic_dim,
                seed=seed,
            )
        raise ValueError(f"unknown family {self.family!r}")


@dataclass
class Dataset:
    """A materialized dataset: base vectors, queries, exact ground truth."""

    spec: DatasetSpec
    base: np.ndarray
    queries: np.ndarray
    gt: np.ndarray  # (n_queries, gt_k) exact neighbour ids
    gt_dist: np.ndarray = field(repr=False, default=None)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def metric(self) -> str:
        return self.spec.metric

    @property
    def dim(self) -> int:
        return int(self.base.shape[1])

    @property
    def n(self) -> int:
        return int(self.base.shape[0])

    def gt_at(self, k: int) -> np.ndarray:
        """Ground-truth ids truncated to ``k`` (k ≤ stored gt width)."""
        if k > self.gt.shape[1]:
            raise ValueError(f"stored ground truth has only {self.gt.shape[1]} columns")
        return self.gt[:, :k]


#: The paper's four corpora (Table III), with mini synthetic defaults.
DATASETS: dict[str, DatasetSpec] = {
    s.name: s
    for s in (
        DatasetSpec("sift1m-mini", "SIFT1M", 1_000_000, 128, "l2", "gaussian"),
        DatasetSpec("gist1m-mini", "GIST1M", 1_000_000, 960, "l2", "gaussian",
                    default_n=8_000, intrinsic_dim=22),
        DatasetSpec("glove200-mini", "GLoVe200", 1_183_514, 200, "cosine", "sphere"),
        DatasetSpec("nytimes-mini", "NYTimes", 290_000, 256, "cosine", "sphere",
                    default_n=12_000, intrinsic_dim=20),
    )
}


def dataset_names() -> list[str]:
    """Names of all registered datasets, in paper order."""
    return list(DATASETS)


@lru_cache(maxsize=16)
def _load_cached(name: str, n: int, n_queries: int, gt_k: int, seed: int) -> Dataset:
    spec = DATASETS[name]
    pool = spec.generate(n + n_queries, seed=seed)
    base, queries = synthetic.split_queries(pool, n_queries, seed=seed + 1)
    if spec.metric == "cosine":
        base = normalize(base, copy=False)
        queries = normalize(queries, copy=False)
    gt, gt_dist = exact_knn(queries, base, gt_k, metric=spec.metric)
    base.setflags(write=False)
    queries.setflags(write=False)
    gt.setflags(write=False)
    return Dataset(spec, base, queries, gt, gt_dist)


def load_dataset(
    name: str,
    n: int | None = None,
    n_queries: int = 256,
    gt_k: int = 128,
    seed: int = 0,
) -> Dataset:
    """Materialize a registered dataset (cached on its full parameter tuple).

    Parameters
    ----------
    n:
        Number of base vectors; defaults to the spec's ``default_n``.
    gt_k:
        Width of the stored exact ground truth (must cover every TopK the
        experiments use — the paper sweeps TopK up to 128 in Fig. 12).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}")
    spec = DATASETS[name]
    n = spec.default_n if n is None else int(n)
    if n <= gt_k:
        raise ValueError("n must exceed gt_k")
    return _load_cached(name, n, int(n_queries), int(gt_k), int(seed))


def load_big_dataset(
    name: str,
    n: int,
    n_queries: int = 256,
    gt_k: int = 128,
    seed: int = 0,
    cache_dir=None,
    chunk_size: int | None = None,
) -> Dataset:
    """Materialize a registered dataset at production scale (100k–1M+).

    Uses the chunked :class:`~repro.data.storage.LatentMixtureModel` (the
    same distribution family as :func:`load_dataset`, with an
    independently seeded draw order) streamed into a memory-mapped
    ``.npy`` under ``cache_dir``, so the base corpus never has to fit in
    one eager ndarray.  Ground truth is computed with the point-blocked
    :func:`~repro.data.storage.exact_knn_big`.

    ``cache_dir`` defaults to ``~/.cache/repro/datasets``; an existing
    cache file for the same ``(name, n, seed)`` is reused as-is (chunked
    generation is deterministic, so the file content is reproducible).
    """
    import os
    from pathlib import Path

    from .storage import LatentMixtureModel, exact_knn_big, generate_memmap

    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}")
    spec = DATASETS[name]
    if n <= gt_k:
        raise ValueError("n must exceed gt_k")
    model = LatentMixtureModel(
        dim=spec.dim,
        n_clusters=spec.n_clusters,
        intrinsic_dim=spec.intrinsic_dim,
        normalized=(spec.metric == "cosine"),
        seed=seed,
        **({"chunk_size": chunk_size} if chunk_size is not None else {}),
    )
    if cache_dir is None:
        cache_dir = Path(
            os.environ.get("REPRO_DATA_CACHE", Path.home() / ".cache" / "repro")
        ) / "datasets"
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{name}-n{n}-seed{seed}.npy"
    if path.exists():
        base = np.load(path, mmap_mode="r")
        if base.shape != (n, spec.dim):
            raise ValueError(
                f"cache file {path} has shape {base.shape}, "
                f"expected {(n, spec.dim)}"
            )
    else:
        base = generate_memmap(path, model, n)
    queries = model.queries(n_queries)
    gt, gt_dist = exact_knn_big(queries, base, gt_k, metric=spec.metric)
    queries.setflags(write=False)
    gt.setflags(write=False)
    return Dataset(spec, base, queries, gt, gt_dist)


def load_real_dataset(
    base_path,
    query_path,
    gt_path=None,
    metric: str = "l2",
    name: str = "real",
    max_base: int | None = None,
    max_queries: int | None = None,
    gt_k: int = 128,
) -> Dataset:
    """Build a :class:`Dataset` from real texmex files (SIFT1M/GIST1M).

    ``base_path``/``query_path`` are ``.fvecs`` files; ``gt_path`` is the
    corpus ``.ivecs`` ground truth (recomputed exactly when omitted or when
    the base set is truncated with ``max_base``).  This is the hook for
    running the benchmarks against the paper's actual corpora when the
    files are available locally.
    """
    from .io import read_fvecs, read_ivecs

    base = read_fvecs(base_path)
    queries = read_fvecs(query_path)
    truncated = False
    if max_base is not None and max_base < base.shape[0]:
        base = base[:max_base]
        truncated = True
    if max_queries is not None:
        queries = queries[:max_queries]
    if metric == "cosine":
        base = normalize(base, copy=False)
        queries = normalize(queries, copy=False)
    if gt_path is not None and not truncated:
        gt = read_ivecs(gt_path)[: queries.shape[0], :gt_k].astype(np.int64)
        gt_dist = None
    else:
        gt_k = min(gt_k, base.shape[0])
        gt, gt_dist = exact_knn(queries, base, gt_k, metric=metric)
    spec = DatasetSpec(
        name=name,
        paper_name=name,
        paper_vertices=int(base.shape[0]),
        dim=int(base.shape[1]),
        metric=metric,
        family="real",
    )
    return Dataset(spec, base, queries, gt, gt_dist)
