"""Zero-copy array sharing across worker processes.

The parallel substrate (docs/performance.md, "Multi-core execution") fans
serving and build work out over :class:`~repro.parallel.pool.WorkerPool`
workers.  Process workers cannot see the parent's heap, and pickling a
corpus per task would copy gigabytes per serve — so arrays cross the
process boundary as :class:`ArrayRef` handles instead:

* ``"shm"`` — the array lives in a :mod:`multiprocessing.shared_memory`
  segment; workers map the same physical pages (attach is O(1), no copy);
* ``"mmap"`` — the array is already a file-backed ``np.memmap`` (the
  big-dataset caches of :mod:`repro.data.storage`); workers re-open the
  file read-only and the OS page cache is the shared copy;
* ``"inline"`` — the array itself, for thread/sequential pools where the
  "worker" shares the parent's address space and nothing is ever pickled.

A :class:`SharedArena` owns the segments it creates and is the *only*
place that unlinks them: workers attach but never own, so a worker crash
cannot leak a segment — the parent's ``close()`` (or its GC/interpreter-
exit finalizer) always reclaims.  On Python < 3.13 an attach spuriously
re-registers the segment with ``resource_tracker`` (there is no
``track=False``); the attach path unregisters it again so the tracker's
ledger stays consistent with the single-owner protocol and worker exit
never double-frees or warns.
"""

from __future__ import annotations

import atexit
import os
import uuid
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ArrayRef", "SharedArena", "resolve_ref"]


@dataclass(frozen=True)
class ArrayRef:
    """Picklable handle to an array living in shared memory / a file / RAM."""

    kind: str  # "shm" | "mmap" | "inline"
    shape: tuple
    dtype: str
    name: str | None = None  # shm segment name
    path: str | None = None  # memmap file path
    offset: int = 0  # memmap byte offset of the data block
    writable: bool = False
    array: object | None = None  # inline payload (same-process pools only)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _segment_name() -> str:
    # Prefixed + random so the lifecycle test can positively identify our
    # segments in /dev/shm and the name never collides across processes.
    return f"repro_{os.getpid()}_{uuid.uuid4().hex[:12]}"


class SharedArena:
    """Owner of a set of shared-memory segments holding numpy arrays.

    ``share(arr)`` copies (or aliases, for memmaps) an array into a
    picklable :class:`ArrayRef`; ``empty(shape, dtype)`` allocates a
    segment-backed array the parent can keep mutating while workers read
    the same pages (the wave builders' barrier pattern: the parent writes
    adjacency rows between waves, workers only read during a wave).

    With ``enabled=False`` (sequential/thread pools) nothing is shared:
    refs are inline and carry the array itself.  ``close()`` unlinks every
    owned segment; it also runs via a GC finalizer and at interpreter
    exit, and is pid-guarded so a forked child inheriting the object can
    never unlink the parent's segments.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._segments: list[shared_memory.SharedMemory] = []
        self._names: list[str] = []
        self._owner_pid = os.getpid()
        # weakref.finalize also fires at interpreter exit, so segments are
        # reclaimed even when close() is never called explicitly.
        self._finalizer = weakref.finalize(
            self, SharedArena._cleanup, self._segments, self._owner_pid
        )

    # ------------------------------------------------------------- sharing
    def share(self, arr: np.ndarray) -> ArrayRef:
        """Return a picklable ref to ``arr`` without copying the vectors
        across the process boundary (one copy *into* shm for plain arrays;
        zero for memmaps and same-process pools)."""
        if not self.enabled:
            arr = np.asarray(arr)
            return ArrayRef("inline", arr.shape, arr.dtype.str, array=arr)
        if (
            isinstance(arr, np.memmap)
            and getattr(arr, "filename", None) is not None
            and arr.flags["C_CONTIGUOUS"]
        ):
            # np.asarray would strip the memmap subclass, so check first.
            return ArrayRef(
                "mmap", arr.shape, arr.dtype.str,
                path=os.fspath(arr.filename), offset=int(arr.offset),
            )
        arr = np.asarray(arr)
        seg = shared_memory.SharedMemory(
            create=True, size=max(arr.nbytes, 1), name=_segment_name()
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        self._segments.append(seg)
        self._names.append(seg.name)
        _OWNED_NAMES.add(seg.name)
        return ArrayRef("shm", arr.shape, arr.dtype.str, name=seg.name)

    def empty(self, shape: tuple, dtype) -> tuple[np.ndarray, ArrayRef]:
        """Allocate a writable parent-side array plus its (read-only for
        workers) ref.  Segment-backed when sharing is enabled, a plain
        array otherwise."""
        dtype = np.dtype(dtype)
        if not self.enabled:
            arr = np.empty(shape, dtype=dtype)
            return arr, ArrayRef("inline", tuple(shape), dtype.str, array=arr)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        seg = shared_memory.SharedMemory(
            create=True, size=max(nbytes, 1), name=_segment_name()
        )
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        self._segments.append(seg)
        self._names.append(seg.name)
        _OWNED_NAMES.add(seg.name)
        return arr, ArrayRef("shm", tuple(shape), dtype.str, name=seg.name)

    # ----------------------------------------------------------- lifecycle
    @property
    def segment_names(self) -> list[str]:
        return list(self._names)

    @staticmethod
    def _cleanup(segments: list, owner_pid: int) -> None:
        if os.getpid() != owner_pid:
            # A forked child inherited this arena; only the owner unlinks.
            return
        for seg in segments:
            # Unlink before close: close() raises BufferError while numpy
            # views of the segment are still alive (the wave builders keep
            # the adjacency view until the CSR is assembled), but the name
            # must be reclaimed regardless — the mapping itself is freed
            # when the last view dies.
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            try:
                seg.close()
            except BufferError:
                pass
        segments.clear()

    def close(self) -> None:
        """Unlink every owned segment (idempotent; owner process only)."""
        if self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------- workers

#: pid that imported this module.  A fork child inherits the import (pid
#: differs) *and* the parent's resource_tracker pipe, whose registration
#: set already dedupes the attach-time re-register — unregistering there
#: would remove the owner's entry.  A spawn child imports fresh (pid
#: matches) and starts its *own* tracker, which must be told it does not
#: own the segment or it unlinks it (with a warning) when the child exits.
_IMPORT_PID = os.getpid()
#: segment names created by arenas in this process (the true owner side).
_OWNED_NAMES: set[str] = set()

#: per-process attachment cache: segment name -> (SharedMemory, ndarray).
#: Attachments persist for the worker's lifetime (pool workers are reused
#: across tasks) and are closed at process exit; they are never unlinked.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
#: memmap re-open cache: (path, offset, shape, dtype) -> ndarray.
_MMAPPED: dict[tuple, np.ndarray] = {}


@atexit.register
def _close_attachments() -> None:  # pragma: no cover - exit path
    for seg, _ in _ATTACHED.values():
        try:
            seg.close()
        except Exception:
            pass
    _ATTACHED.clear()


def _attach(ref: ArrayRef) -> np.ndarray:
    cached = _ATTACHED.get(ref.name)
    if cached is None:
        seg = shared_memory.SharedMemory(name=ref.name)
        if ref.name not in _OWNED_NAMES and os.getpid() == _IMPORT_PID:
            try:
                # Pre-3.13 attach registers with resource_tracker as if
                # this process owned the segment (no track=False yet).  In
                # a spawn-style worker, whose private tracker would unlink
                # (and warn about) the segment at exit, undo it — the
                # arena in the parent is the sole owner.  Fork workers
                # share the parent's tracker, whose registration set
                # already deduped the re-register; see _IMPORT_PID above.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(seg._name, "shared_memory")
            except Exception:
                pass
        arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        if not ref.writable:
            arr.setflags(write=False)
        _ATTACHED[ref.name] = (seg, arr)
        cached = (seg, arr)
    return cached[1]


def resolve_ref(ref: ArrayRef) -> np.ndarray:
    """Materialize an :class:`ArrayRef` in this process (cached, O(1) after
    the first touch of a segment/file)."""
    if ref.kind == "inline":
        return ref.array
    if ref.kind == "mmap":
        key = (ref.path, ref.offset, ref.shape, ref.dtype)
        arr = _MMAPPED.get(key)
        if arr is None:
            arr = np.memmap(
                ref.path, dtype=np.dtype(ref.dtype), mode="r",
                offset=ref.offset, shape=ref.shape,
            )
            _MMAPPED[key] = arr
        return arr
    if ref.kind == "shm":
        return _attach(ref)
    raise ValueError(f"unknown ArrayRef kind {ref.kind!r}")
