"""Multi-core parallel execution substrate.

Process/thread worker pools (:mod:`repro.parallel.pool`) over zero-copy
shared corpora (:mod:`repro.parallel.shared`).  Consumed by the cluster
servers (``ServeConfig.parallelism``), the wave-batched graph builders
(``build_nsw/hnsw(..., parallelism=)``), and the bench runner's config
sweep (:func:`repro.bench.runner.run_sweep`).  Sequential mode
(``parallelism <= 1``) is byte-identical to the pre-parallel code paths;
see docs/performance.md ("Multi-core execution") for when processes beat
threads and how parity is enforced.
"""

from .pool import MODES, WorkerPool, make_pool
from .shared import ArrayRef, SharedArena, resolve_ref

__all__ = [
    "MODES",
    "WorkerPool",
    "make_pool",
    "ArrayRef",
    "SharedArena",
    "resolve_ref",
]
