"""Worker-pool execution modes for the parallel substrate.

One abstraction, three modes (docs/performance.md, "Multi-core execution"):

``"process"``
    A fork-context :class:`~concurrent.futures.ProcessPoolExecutor` —
    true multi-core for the Python-bound serving/scheduling loops (the
    dynamic batcher is pure Python and the GIL serializes it in threads).
    Inputs cross via pickle, corpora via :mod:`repro.parallel.shared`.

``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor` — the fallback for
    numpy-bound work (large-dim distance kernels release the GIL) and for
    tasks that cannot pickle (lambda graph builders).  Zero-copy by
    construction: workers share the parent's heap.

``"sequential"``
    Inline execution in the caller, byte-identical to the pre-parallel
    code path.  ``n_workers <= 1`` always resolves here, so a
    ``parallelism=0`` default costs nothing.

``map`` is *ordered* — results come back in submission order regardless
of completion order, which is what makes the cluster fan-in (merge by
shard id) deterministic across worker counts.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

__all__ = ["MODES", "WorkerPool", "make_pool"]

MODES = ("sequential", "thread", "process")


class WorkerPool:
    """N workers executing single-argument tasks with ordered results."""

    def __init__(self, n_workers: int = 0, mode: str = "process"):
        if mode not in MODES:
            raise ValueError(f"unknown pool mode {mode!r}; expected one of {MODES}")
        n = int(n_workers or 0)
        if n < 0:
            raise ValueError("n_workers must be non-negative")
        self.n_workers = max(1, n)
        self.mode = "sequential" if n <= 1 else mode
        self._exec = None
        if self.mode == "process":
            # fork shares the parent's pages copy-on-write (warm dataset /
            # graph caches ride along for free); spawn is the portability
            # fallback and relies solely on the shared-memory refs.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._exec = ProcessPoolExecutor(self.n_workers, mp_context=ctx)
        elif self.mode == "thread":
            self._exec = ThreadPoolExecutor(self.n_workers)

    # ------------------------------------------------------------- queries
    @property
    def is_process(self) -> bool:
        return self.mode == "process"

    @property
    def is_parallel(self) -> bool:
        return self.mode != "sequential"

    # ----------------------------------------------------------- execution
    def map(self, fn, items) -> list:
        """Apply ``fn`` to every item; results in submission order.

        A task exception propagates as-is.  A *worker crash* (hard exit,
        OOM kill) surfaces as a RuntimeError naming the pool — the
        executor is broken at that point and the owner should close it;
        any shared segments stay owned by the parent, so nothing leaks.
        """
        items = list(items)
        if self._exec is None:
            return [fn(item) for item in items]
        futures = [self._exec.submit(fn, item) for item in items]
        out = []
        try:
            for f in futures:
                out.append(f.result())
        except BrokenProcessPool as e:
            raise RuntimeError(
                f"a worker process died while executing "
                f"{getattr(fn, '__name__', fn)!r}; the process pool is broken "
                f"(results so far: {len(out)}/{len(items)})"
            ) from e
        return out

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._exec is not None:
            self._exec.shutdown(wait=True, cancel_futures=True)
            self._exec = None
            self.mode = "sequential"

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_pool(parallelism: int | None, mode: str | None = None) -> WorkerPool:
    """Resolve the ``ServeConfig.parallelism`` knobs into a pool.

    ``parallelism`` None/0/1 → sequential; ``mode`` None → ``"process"``.
    """
    return WorkerPool(parallelism or 0, mode or "process")
