"""Production-traffic layer: open-loop load, admission control, autoscaling.

See docs/load_testing.md.  The pieces:

* :mod:`repro.data.workload` — declarative arrival processes
  (Poisson/diurnal/bursty/trace) and :class:`TrafficSpec` admission
  contracts, accepted by every ``serve()`` via ``ServeConfig.workload``;
* :class:`~repro.load.driver.FleetDriver` — event-driven replica fleet
  with a central admission queue;
* :class:`~repro.load.autoscaler.Autoscaler` — queue-depth scale policy;
* :mod:`repro.load.harness` — offered-load sweeps, latency-vs-QPS curves,
  and the max-sustainable-QPS frontier (``repro load`` CLI,
  ``BENCH_load.json``).
"""

from .autoscaler import Autoscaler, AutoscalerPolicy, ScaleDecision
from .driver import FleetConfig, FleetDriver
from .harness import (
    LoadPoint,
    max_sustainable_qps,
    replay_jobs,
    run_load_point,
    sweep_load,
    write_bench_load,
)

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "ScaleDecision",
    "FleetConfig",
    "FleetDriver",
    "LoadPoint",
    "max_sustainable_qps",
    "replay_jobs",
    "run_load_point",
    "sweep_load",
    "write_bench_load",
]
