"""Offered-load sweeps: latency-vs-QPS curves and the sustainable frontier.

The load experiment the paper cannot show (it serves fixed batches): hold
the system shape constant, sweep the *offered* arrival rate, and read off

* p50/p95/p99 end-to-end latency at each offered QPS (the hockey-stick
  curve — flat while capacity holds, divergent past saturation);
* the **max sustainable QPS**: the highest offered rate at which the
  fleet still meets a p99 budget while answering (almost) everything.

Search cost is decoupled from traffic: a small set of *searched* query
templates (real kernels, priced traces) is replayed over an arbitrarily
long arrival stream with :func:`replay_jobs`, so a 100k-point corpus and
50k arrivals cost one search pass plus a fast event simulation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..core.serving import QueryJob, ServeReport, _json_safe
from ..data.workload import ArrivalProcess, QueryEvent
from ..parallel import make_pool
from .autoscaler import AutoscalerPolicy
from .driver import FleetConfig, FleetDriver

__all__ = [
    "replay_jobs",
    "LoadPoint",
    "run_load_point",
    "sweep_load",
    "max_sustainable_qps",
    "write_bench_load",
]


def replay_jobs(
    templates: list[QueryJob], events: list[QueryEvent]
) -> list[QueryJob]:
    """Clone searched job templates onto an arrival stream.

    Event ``i`` reuses template ``i mod len(templates)`` (its priced CTA
    durations) with the event's id and arrival time — the standard
    trace-replay trick: search cost per *distinct* query, traffic volume
    per *arrival*.
    """
    if not templates:
        raise ValueError("need at least one job template")
    return [
        replace(
            templates[i % len(templates)],
            query_id=ev.query_id,
            arrival_us=ev.arrival_us,
        )
        for i, ev in enumerate(events)
    ]


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load measurement."""

    offered_qps: float
    achieved_qps: float
    n_offered: int
    n_answered: int
    n_dropped: int
    n_shed: int
    p50_e2e_us: float
    p95_e2e_us: float
    p99_e2e_us: float
    mean_e2e_us: float
    peak_replicas: int

    @property
    def answered_frac(self) -> float:
        return self.n_answered / self.n_offered if self.n_offered else 0.0

    def to_dict(self) -> dict:
        d = {f: getattr(self, f) for f in self.__dataclass_fields__}
        d["answered_frac"] = self.answered_frac
        return d


def _point_from_report(
    report: ServeReport,
    offered_qps: float,
    n_offered: int,
    measured_ids: set[int] | None = None,
) -> LoadPoint:
    """Reduce a serve report to a point; with ``measured_ids``, restrict
    latency/answered accounting to those queries (warm-up exclusion)."""
    if measured_ids is None:
        recs = report.records
        n_dropped = report.meta.get("dropped", 0)
        n_shed = report.meta.get("shed", 0)
        e2e = report.sorted_latencies_us("e2e")
    else:
        recs = [r for r in report.records if r.query_id in measured_ids]
        n_dropped = sum(
            1 for q in report.meta.get("dropped_ids", ()) if q in measured_ids
        )
        n_shed = sum(
            1 for q in report.meta.get("shed_ids", ()) if q in measured_ids
        )
        e2e = np.sort(
            np.array([r.complete_us - r.arrival_us for r in recs], dtype=float)
        )
    q = (
        lambda p: float(np.percentile(e2e, p)) if e2e.size else float("inf")
    )
    return LoadPoint(
        offered_qps=offered_qps,
        achieved_qps=report.throughput_qps,
        n_offered=n_offered,
        n_answered=len(recs),
        n_dropped=n_dropped,
        n_shed=n_shed,
        p50_e2e_us=q(50),
        p95_e2e_us=q(95),
        p99_e2e_us=q(99),
        mean_e2e_us=float(e2e.mean()) if e2e.size else float("inf"),
        peak_replicas=report.meta.get("peak_replicas", 0),
    )


def run_load_point(
    templates: list[QueryJob],
    process: ArrivalProcess,
    n_queries: int,
    fleet: FleetConfig,
    autoscaler: AutoscalerPolicy | None = None,
    seed: int | None = None,
    warmup_frac: float = 0.0,
) -> tuple[LoadPoint, ServeReport]:
    """Serve one offered-load point through the fleet driver.

    ``warmup_frac`` excludes the first fraction of arrivals from the
    latency percentiles and the answered/dropped accounting — standard
    load-testing practice for measuring steady state rather than the
    cold-start/ramp transient (the warm-up queries are still offered and
    served; only the bookkeeping skips them).  An autoscaled fleet needs
    this: its ramp is *supposed* to lag the first burst.
    """
    if not 0.0 <= warmup_frac < 1.0:
        raise ValueError("warmup_frac must be in [0, 1)")
    events = process.events(n_queries, seed=seed)
    jobs = replay_jobs(templates, events)
    driver = FleetDriver(fleet, autoscaler_policy=autoscaler)
    report = driver.serve(jobs)
    qps = process.mean_qps
    if qps is None:  # closed loop / degenerate trace: infer from the stream
        span = events[-1].arrival_us - events[0].arrival_us if len(events) > 1 else 0.0
        qps = (len(events) - 1) / (span * 1e-6) if span > 0 else float("inf")
    measured = None
    n_measured = n_queries
    if warmup_frac > 0.0:
        cut = int(len(events) * warmup_frac)
        measured = {e.query_id for e in events[cut:]}
        n_measured = len(measured)
    return _point_from_report(report, qps, n_measured, measured), report


def _sweep_point_task(payload: dict) -> LoadPoint:
    # Module-level so process workers can unpickle it; the arrival
    # processes are built in the parent (make_process may be a lambda)
    # and everything crossing the boundary is a plain dataclass.
    point, _ = run_load_point(**payload)
    return point


def sweep_load(
    templates: list[QueryJob],
    make_process,
    rates_qps: list[float],
    n_queries: int,
    fleet: FleetConfig,
    autoscaler: AutoscalerPolicy | None = None,
    seed: int | None = None,
    warmup_frac: float = 0.0,
    progress=None,
    parallelism: int = 0,
    parallel_mode: str = "process",
) -> list[LoadPoint]:
    """Sweep offered load: ``make_process(rate_qps) -> ArrivalProcess``.

    Returns one :class:`LoadPoint` per rate, in sweep order.  Each rate
    point is an independent event simulation seeded on its own, so
    ``parallelism=N`` fans the points across workers with rate-ordered
    results identical to the sequential sweep; ``progress`` then fires
    after the fan-in (still in sweep order) rather than as each point
    lands.
    """
    payloads = [
        dict(
            templates=templates, process=make_process(rate),
            n_queries=n_queries, fleet=fleet, autoscaler=autoscaler,
            seed=seed, warmup_frac=warmup_frac,
        )
        for rate in rates_qps
    ]
    with make_pool(parallelism, parallel_mode) as pool:
        points = pool.map(_sweep_point_task, payloads)
    if progress is not None:
        for point in points:
            progress(point)
    return points


def max_sustainable_qps(
    points: list[LoadPoint],
    p99_budget_us: float,
    min_answered: float = 0.99,
) -> float:
    """Highest offered QPS meeting the p99 budget and answer-rate floor.

    Reads the sweep like an SLO audit: a point *sustains* its rate if p99
    end-to-end latency is within budget and at least ``min_answered`` of
    offered queries were answered (drops and shed both count against).
    Returns 0.0 when no point qualifies.
    """
    ok = [
        p.offered_qps
        for p in points
        if p.p99_e2e_us <= p99_budget_us and p.answered_frac >= min_answered
    ]
    return max(ok, default=0.0)


def write_bench_load(
    path: str | os.PathLike,
    corpus: dict,
    curves: dict[str, list[LoadPoint]],
    p99_budget_us: float,
    min_answered: float = 0.99,
    extra: dict | None = None,
) -> dict:
    """Emit ``BENCH_load.json``: per-config latency-vs-QPS curves plus the
    max-sustainable-QPS headline per config.

    ``curves`` maps config label → sweep points.  Returns the document.
    """
    doc = {
        "benchmark": "open-loop offered-load sweep",
        "corpus": corpus,
        "p99_budget_us": p99_budget_us,
        "min_answered": min_answered,
        "curves": {
            label: [p.to_dict() for p in pts] for label, pts in curves.items()
        },
        "max_sustainable_qps": {
            label: max_sustainable_qps(pts, p99_budget_us, min_answered)
            for label, pts in curves.items()
        },
    }
    if extra:
        doc.update(extra)
    Path(path).write_text(json.dumps(_json_safe(doc), indent=2, sort_keys=True) + "\n")
    return doc
