"""Queue-depth autoscaling policy for the simulated replica fleet.

The control loop mirrors a standard production autoscaler (HPA-style, with
the pragmatics that matter at serving timescales):

* the **signal** is the admission queue's ready depth — the same
  ``algas_queue_depth`` telemetry the engines already export, sampled at a
  fixed control interval;
* **scale up** when the backlog per active replica crosses
  ``scale_up_depth`` (capacity is behind the offered load);
* **scale down** when the *total* backlog falls under ``scale_down_depth``
  (capacity is idle) — asymmetric thresholds give the loop hysteresis;
* new replicas take ``provision_delay_us`` to come up (model load +
  graph upload + kernel launch), so the fleet pays for under-provisioning
  during ramps — this is what makes bursty traffic interesting;
* ``cooldown_us`` rate-limits decisions so one burst doesn't slam the
  fleet through multiple scale steps before the first lands.

:class:`Autoscaler` is pure decision logic over ``(now, depth, replicas)``
— the :class:`~repro.load.driver.FleetDriver` owns actuation (activating
and draining replicas), so the policy is unit-testable without a fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscalerPolicy", "Autoscaler", "ScaleDecision"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Knobs of the queue-depth autoscaler (docs/load_testing.md)."""

    min_replicas: int = 1
    max_replicas: int = 4
    #: scale up when ready depth exceeds this many queries *per replica*
    #: (counting replicas still provisioning, so a pending scale-up is not
    #: re-triggered every tick while it provisions).
    scale_up_depth: float = 24.0
    #: scale down when *total* ready depth sits at or under this.
    scale_down_depth: float = 2.0
    #: control loop sampling period (µs).
    check_interval_us: float = 20_000.0
    #: time for a newly added replica to become dispatchable (µs).
    provision_delay_us: float = 200_000.0
    #: minimum time between scale decisions (µs).
    cooldown_us: float = 100_000.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.scale_up_depth <= self.scale_down_depth:
            raise ValueError(
                "scale_up_depth must exceed scale_down_depth (hysteresis)"
            )
        if self.check_interval_us <= 0:
            raise ValueError("check_interval_us must be positive")
        if self.provision_delay_us < 0 or self.cooldown_us < 0:
            raise ValueError("delays must be non-negative")


@dataclass(frozen=True)
class ScaleDecision:
    """One applied scale step (recorded in the driver's meta timeline)."""

    at_us: float
    old: int
    new: int
    depth: int


class Autoscaler:
    """Stateful decision loop: sample depth, emit a target replica count."""

    def __init__(self, policy: AutoscalerPolicy):
        self.policy = policy
        self.last_decision_us = -float("inf")
        self.decisions: list[ScaleDecision] = []

    def target(self, now_us: float, depth: int, replicas: int) -> int:
        """Target replica count given current state.

        ``replicas`` counts active *and* still-provisioning replicas — the
        capacity already committed.  Returns the (possibly unchanged)
        target, clamped to the policy's bounds; one step per call, so the
        fleet ramps rather than jumps.
        """
        p = self.policy
        if now_us - self.last_decision_us < p.cooldown_us:
            return replicas
        target = replicas
        if depth > p.scale_up_depth * replicas and replicas < p.max_replicas:
            target = replicas + 1
        elif depth <= p.scale_down_depth and replicas > p.min_replicas:
            target = replicas - 1
        if target != replicas:
            self.last_decision_us = now_us
            self.decisions.append(ScaleDecision(now_us, replicas, target, depth))
        return target
