"""Open-loop fleet driver: replicas + admission control + autoscaling.

The batching engines replay one job list start-to-finish on a fixed slot
pool; they cannot change capacity mid-serve, which is exactly what an
autoscaled fleet does.  :class:`FleetDriver` is the serving-cluster analog
of those engines: an event-driven simulation (same deterministic
:class:`~repro.gpusim.engine.Simulator`) of R replicas fed from one
central admission queue (the real :class:`~repro.core.query_manager.QueryManager`,
so deadline drops, queue-depth shedding, and the queue-depth telemetry
signal are the production code paths, not re-implementations).

Per-query service is priced from the job's own CTA durations plus fixed
dispatch/collect overheads — a deliberate simplification of the engine's
slot machinery (no per-CTA events, no host poll loop).  The overhead
defaults are calibrated so a 1-replica fleet tracks the real
:class:`~repro.core.dynamic_batcher.DynamicBatchEngine` on the same jobs
(tests/test_load.py gates the ratio), keeping the fleet numbers honest
while letting a sweep run thousands of offered-load points in seconds.

Capacity changes compose with the admission queue: the
:class:`~repro.load.autoscaler.Autoscaler` samples the queue's ready depth
at its control interval and the driver actuates — new replicas become
dispatchable after the provision delay, removed replicas stop taking work
and drain their in-flight queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.query_manager import ManagedQuery, QueryManager
from ..core.serving import QueryJob, QueryRecord, ServeReport
from ..gpusim.engine import Simulator
from ..telemetry import NULL_TELEMETRY
from .autoscaler import Autoscaler, AutoscalerPolicy

__all__ = ["FleetConfig", "FleetDriver"]


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the replica fleet (docs/load_testing.md)."""

    #: replicas active at t=0 (fixed-fleet size when no autoscaler is set).
    n_replicas: int = 2
    #: concurrent queries per replica (the engine's slot count).
    slots_per_replica: int = 16
    #: host dispatch cost per query: submit + state publish + device poll.
    dispatch_overhead_us: float = 1.8
    #: host collect cost per query: detect + PCIe result read + TopK merge.
    collect_overhead_us: float = 3.0
    #: relative drop deadline applied to every query (None = no deadline).
    deadline_us: float | None = None
    #: central admission queue depth limit (None = unbounded).
    max_queue_depth: int | None = None

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if self.slots_per_replica < 1:
            raise ValueError("slots_per_replica must be >= 1")
        if self.dispatch_overhead_us < 0 or self.collect_overhead_us < 0:
            raise ValueError("overheads must be non-negative")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ValueError("deadline_us must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")


@dataclass
class _Replica:
    rid: int
    #: dispatchable from this time on (provisioning delay for scale-ups).
    up_at_us: float = 0.0
    busy: int = 0
    draining: bool = False
    queries_served: int = 0
    busy_us: float = 0.0


class FleetDriver:
    """Serve priced jobs on an (optionally autoscaled) replica fleet."""

    def __init__(
        self,
        config: FleetConfig,
        autoscaler_policy: AutoscalerPolicy | None = None,
        telemetry=None,
    ):
        self.cfg = config
        self.policy = autoscaler_policy
        self.tel = telemetry or NULL_TELEMETRY
        if autoscaler_policy is not None and (
            not autoscaler_policy.min_replicas
            <= config.n_replicas
            <= autoscaler_policy.max_replicas
        ):
            raise ValueError(
                "initial n_replicas must lie within the autoscaler's "
                "[min_replicas, max_replicas]"
            )

    # ----------------------------------------------------------------- serve
    def serve(self, jobs: list[QueryJob]) -> ServeReport:
        cfg = self.cfg
        tel = self.tel
        jobs = sorted(jobs, key=lambda j: (j.arrival_us, j.query_id))
        if len({j.query_id for j in jobs}) != len(jobs):
            raise ValueError("duplicate query ids in job list")
        managed = [
            ManagedQuery(
                j,
                deadline_us=(
                    j.arrival_us + cfg.deadline_us
                    if cfg.deadline_us is not None
                    else None
                ),
            )
            for j in jobs
        ]
        manager = QueryManager(
            managed, telemetry=tel, max_queue_depth=cfg.max_queue_depth
        )
        scaler = Autoscaler(self.policy) if self.policy is not None else None
        sim = Simulator()
        replicas: list[_Replica] = [
            _Replica(rid=r) for r in range(cfg.n_replicas)
        ]
        records: dict[int, QueryRecord] = {
            j.query_id: QueryRecord(j.query_id, j.arrival_us) for j in jobs
        }
        state = {
            "outstanding": len(jobs),
            "drops_seen": 0,
            "gpu_busy": 0.0,
            "peak_replicas": cfg.n_replicas,
        }
        tel.replicas_active(cfg.n_replicas)

        def committed() -> int:
            """Replicas active or provisioning, minus those draining out."""
            return sum(1 for r in replicas if not r.draining)

        def note_drops(t: float) -> None:
            # Deadline/shed drops surfaced by the manager never complete.
            if len(manager.dropped) > state["drops_seen"]:
                state["outstanding"] -= len(manager.dropped) - state["drops_seen"]
                state["drops_seen"] = len(manager.dropped)

        def finish(rep: _Replica, q: ManagedQuery, started: float):
            def fn(sim_: Simulator) -> None:
                t = sim_.now
                rep.busy -= 1
                rep.queries_served += 1
                rep.busy_us += t - started
                rec = records[q.job.query_id]
                rec.detected_us = t - cfg.collect_overhead_us
                rec.complete_us = t
                state["outstanding"] -= 1
                if tel.enabled:
                    tel.query_completed(rec)
                if rep.draining and rep.busy == 0:
                    replicas.remove(rep)
                pump(sim_)

            return fn

        def pump(sim_: Simulator) -> None:
            """Dispatch ready queries onto free slots until one side runs dry."""
            t = sim_.now
            while True:
                note_drops(t)
                # Least-loaded active replica with a free slot.
                cand = [
                    r
                    for r in replicas
                    if not r.draining
                    and r.up_at_us <= t
                    and r.busy < cfg.slots_per_replica
                ]
                if not cand:
                    break
                rep = min(cand, key=lambda r: (r.busy, r.rid))
                q = manager.next_ready(t)
                note_drops(t)
                if q is None:
                    break
                job = q.job
                rec = records[job.query_id]
                rec.dispatch_us = t
                if tel.enabled:
                    tel.query_dispatched(job.query_id, job.arrival_us, t)
                rep.busy += 1
                gpu_start = t + cfg.dispatch_overhead_us
                rec.gpu_start_us = gpu_start
                rec.gpu_end_us = gpu_start + job.gpu_time_us
                state["gpu_busy"] += sum(job.cta_durations_us)
                done = rec.gpu_end_us + cfg.collect_overhead_us
                sim_.schedule(done, finish(rep, q, t))

        def control(sim_: Simulator) -> None:
            """Autoscaler tick: sample depth, actuate one scale step."""
            t = sim_.now
            depth = manager.ready_depth(t)
            note_drops(t)
            n = committed()
            target = scaler.target(t, depth, n)
            if target > n:
                rid = max((r.rid for r in replicas), default=-1) + 1
                replicas.append(
                    _Replica(rid=rid, up_at_us=t + scaler.policy.provision_delay_us)
                )
                tel.scale_event(t, n, target, depth)
                sim_.schedule(t + scaler.policy.provision_delay_us, pump)
            elif target < n:
                # Drain the busiest-numbered (newest) non-draining replica,
                # but never below one live dispatcher.
                victims = [r for r in replicas if not r.draining]
                victim = max(victims, key=lambda r: r.rid)
                victim.draining = True
                if victim.busy == 0:
                    replicas.remove(victim)
                tel.scale_event(t, n, target, depth)
            state["peak_replicas"] = max(
                state["peak_replicas"], sum(1 for r in replicas if not r.draining)
            )
            if state["outstanding"] > 0:
                sim_.schedule(t + scaler.policy.check_interval_us, control)

        # Wake the dispatcher at every arrival (the admission queue only
        # observes time when polled) and start the control loop.
        for j in jobs:
            sim.schedule(j.arrival_us, pump)
        sim.schedule(0.0, pump)
        if scaler is not None:
            sim.schedule(0.0, control)
        sim.run()
        # A deadline can expire after the last completion event with no
        # event left to observe it; final sweep settles the ledger.
        if manager:
            manager.ready_depth(
                max(
                    (m.deadline_us for m in managed if m.deadline_us is not None),
                    default=sim.now,
                )
                + 1.0
            )
            note_drops(sim.now)

        dropped_ids = {m.job.query_id for m in manager.dropped}
        shed_ids = sorted(m.job.query_id for m in manager.shed)
        recs = [
            records[j.query_id] for j in jobs if j.query_id not in dropped_ids
        ]
        makespan = max((r.complete_us for r in recs), default=0.0)
        meta = {
            "mode": "fleet",
            "config": cfg,
            "n_replicas": cfg.n_replicas,
            "dropped": len(dropped_ids),
            "dropped_ids": sorted(dropped_ids),
            "shed": len(shed_ids),
            "shed_ids": shed_ids,
            "peak_replicas": state["peak_replicas"],
        }
        if scaler is not None:
            meta["autoscaler"] = scaler.policy
            meta["scale_events"] = [
                {"at_us": d.at_us, "from": d.old, "to": d.new, "depth": d.depth}
                for d in scaler.decisions
            ]
        report = ServeReport(
            records=recs,
            makespan_us=makespan,
            gpu_cta_busy_us=state["gpu_busy"],
            n_cta_slots=state["peak_replicas"] * cfg.slots_per_replica,
            pcie=None,
            host_busy_us=0.0,
            meta=meta,
        )
        tel.observe_report(report, mode="fleet")
        return report
