"""Operation traces emitted by the search kernels.

The search algorithms in :mod:`repro.search` run *for real* on real vectors;
while running they record, per greedy-search step, exactly which operations a
CTA would issue (neighbour fetches, visited-bitmap probes, distance FMAs,
bitonic compare-exchanges, …).  The cost model then prices a trace without
re-running the search, which is what lets one set of traces be scheduled
under several batching disciplines for an apples-to-apples comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepRecord", "CTATrace", "QueryTrace"]


@dataclass(frozen=True)
class StepRecord:
    """Op counts for one greedy-search step (Alg. 1 lines 7–19).

    One *step* = select candidate(s) → fetch neighbours → filter via bitmap
    → compute distances → (maybe) sort-and-merge the candidate list.
    With beam extend a single step may expand several candidates and skip
    the sort; ``did_sort`` is False for the skipped iterations.
    """

    #: offset of the selected candidate within the candidate list (the beam
    #: phase trigger from §IV-C); for beam steps, offset of the first pick.
    select_offset: int
    #: how many candidates were expanded in this step (1 for pure greedy).
    n_expanded: int
    #: neighbour ids fetched from the adjacency lists (global memory reads).
    n_neighbors_fetched: int
    #: bitmap probes performed (== neighbours fetched).
    n_visited_checks: int
    #: neighbours that survived the filter → full distance computations.
    n_new_points: int
    #: vector dimensionality (per-distance FMA count is n_new · dim).
    dim: int
    #: elements participating in the bitonic sort+merge (0 if skipped).
    sort_size: int
    #: candidate-list length at this step (scanned during selection).
    cand_list_len: int
    #: whether the sort/merge maintenance ran this step.
    did_sort: bool
    #: best (smallest) distance in the candidate list after the step —
    #: recorded for the Fig. 7 convergence analysis.
    best_dist: float = float("nan")
    #: distance substrate of this step's scoring kernel: ``"float32"``
    #: (per-dimension FMAs), ``"int8"`` (DP4A packed MACs over SQ8 codes)
    #: or ``"pq"`` (``dim`` = m table lookups per point).  The cost model
    #: prices the distance phase per-substrate.
    precision: str = "float32"


@dataclass
class CTATrace:
    """Everything one CTA did while serving (its share of) one query."""

    steps: list[StepRecord] = field(default_factory=list)
    #: number of result slots this CTA writes back (its local TopK length).
    result_len: int = 0

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def n_sorts(self) -> int:
        return sum(1 for s in self.steps if s.did_sort)

    @property
    def n_distances(self) -> int:
        """Total full distance computations performed."""
        return sum(s.n_new_points for s in self.steps)

    @property
    def n_expanded(self) -> int:
        """Total candidates expanded (== sequential greedy iterations)."""
        return sum(s.n_expanded for s in self.steps)


@dataclass
class QueryTrace:
    """Traces of all CTAs cooperating on a single query.

    ``ctas[i]`` is the trace of the i-th CTA.  For single-CTA search the
    list has one element.  The merged result ids/distances live with the
    caller (search functions return them separately).
    """

    ctas: list[CTATrace] = field(default_factory=list)
    dim: int = 0
    k: int = 0

    @property
    def n_ctas(self) -> int:
        return len(self.ctas)

    @property
    def max_steps(self) -> int:
        return max((c.n_steps for c in self.ctas), default=0)

    @property
    def total_distances(self) -> int:
        return sum(c.n_distances for c in self.ctas)

    @property
    def total_sorts(self) -> int:
        return sum(c.n_sorts for c in self.ctas)
