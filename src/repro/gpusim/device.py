"""GPU device property model.

The paper's adaptive tuning scheme (§IV-C) consumes exactly the properties
listed in its Table II for the RTX A6000; we model those plus the handful of
timing-relevant quantities the cost model needs (clock, memory latencies and
bandwidths, kernel-launch and PCIe characteristics).

The numbers for :data:`RTX_A6000` reproduce Table II verbatim; the timing
constants are order-of-magnitude figures for an Ampere-class part and are
deliberately kept as plain dataclass fields so experiments can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceProperties", "RTX_A6000", "RTX_3080", "A100_SXM", "DEVICE_PRESETS"]

KIB = 1024


@dataclass(frozen=True)
class DeviceProperties:
    """Static hardware description of a simulated GPU."""

    name: str
    # --- Table II fields ---
    shared_mem_per_block: int  # bytes (default CUDA limit)
    shared_mem_per_sm: int  # bytes, "Shared memory per multiprocessor"
    reserved_shared_mem_per_block: int  # bytes
    shared_mem_per_block_optin: int  # bytes, deviceProp.sharedMemPerBlockOptin
    num_sms: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    warp_size: int
    # --- timing model ---
    clock_ghz: float = 1.41  # SM clock
    global_mem_latency_cycles: float = 400.0
    global_mem_bw_gbps: float = 768.0  # device memory bandwidth
    shared_mem_latency_cycles: float = 25.0
    kernel_launch_us: float = 6.0  # host-side launch + device setup
    # --- PCIe link ---
    pcie_lat_us: float = 0.9  # per-transaction latency (round-trippish)
    pcie_bw_gbps: float = 24.0  # effective PCIe 4.0 x16 payload bandwidth

    def cycles_to_us(self, cycles: float) -> float:
        """Convert SM cycles to microseconds at the modelled clock."""
        return cycles / (self.clock_ghz * 1e3)

    @property
    def max_resident_blocks(self) -> int:
        """Upper bound on simultaneously-resident blocks (ignoring memory)."""
        return self.num_sms * self.max_blocks_per_sm

    def with_overrides(self, **kw) -> "DeviceProperties":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


#: Paper Table II — NVIDIA RTX A6000 (the evaluation GPU).
RTX_A6000 = DeviceProperties(
    name="RTX A6000",
    shared_mem_per_block=48 * KIB,
    shared_mem_per_sm=100 * KIB,
    reserved_shared_mem_per_block=1 * KIB,
    shared_mem_per_block_optin=99 * KIB,
    num_sms=84,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    warp_size=32,
)

#: A smaller consumer part, used by the tuning tests to show adaptation.
RTX_3080 = DeviceProperties(
    name="RTX 3080",
    shared_mem_per_block=48 * KIB,
    shared_mem_per_sm=100 * KIB,
    reserved_shared_mem_per_block=1 * KIB,
    shared_mem_per_block_optin=99 * KIB,
    num_sms=68,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    warp_size=32,
    global_mem_bw_gbps=760.0,
    clock_ghz=1.71,
)

#: A datacenter part with more SMs and shared memory.
A100_SXM = DeviceProperties(
    name="A100 SXM",
    shared_mem_per_block=48 * KIB,
    shared_mem_per_sm=164 * KIB,
    reserved_shared_mem_per_block=1 * KIB,
    shared_mem_per_block_optin=163 * KIB,
    num_sms=108,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    warp_size=32,
    global_mem_bw_gbps=1555.0,
    clock_ghz=1.41,
)

DEVICE_PRESETS: dict[str, DeviceProperties] = {
    d.name: d for d in (RTX_A6000, RTX_3080, A100_SXM)
}
