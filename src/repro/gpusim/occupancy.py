"""Shared-memory and block-occupancy accounting (§IV-C).

The adaptive tuner must guarantee that every slot's CTAs are *simultaneously
resident* — a persistent kernel deadlocks if any of its blocks cannot be
scheduled.  Residency is limited by two resources, both modelled here:

* blocks per SM (``N_max_block_per_SM`` from Table II), and
* shared memory per SM: the candidate list, expand list, and staged query
  vector all live in shared memory, plus a reserved runtime cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceProperties

__all__ = [
    "SearchMemoryLayout",
    "block_shared_mem_bytes",
    "max_resident_blocks",
    "can_cohabit",
]

#: bytes per candidate/expand entry: (id: int32, distance: float32)
ENTRY_BYTES = 8


@dataclass(frozen=True)
class SearchMemoryLayout:
    """Shared-memory footprint of one search block.

    Mirrors the structures §IV-B keeps in shared memory: the candidate list
    (length L), the expand list, and the query vector staged for the
    distance loop.  ``scratch_bytes`` covers the bitonic-sort ping-pong
    buffer and control words.
    """

    cand_list_len: int
    expand_list_len: int
    dim: int
    scratch_bytes: int = 256

    def total_bytes(self) -> int:
        if self.cand_list_len <= 0 or self.expand_list_len <= 0 or self.dim <= 0:
            raise ValueError("layout sizes must be positive")
        cand = self.cand_list_len * ENTRY_BYTES
        # Bitonic networks pad to a power of two.
        exp_pad = 1 << max(1, math.ceil(math.log2(self.expand_list_len)))
        expand = exp_pad * ENTRY_BYTES
        query = self.dim * 4
        return cand + expand + query + self.scratch_bytes


def block_shared_mem_bytes(
    layout: SearchMemoryLayout, device: DeviceProperties
) -> int:
    """Total shared memory a search block charges against its SM.

    Adds the device's per-block reserved shared memory (Table II row
    "Reserved shared memory per block").
    """
    return layout.total_bytes() + device.reserved_shared_mem_per_block


def max_resident_blocks(
    device: DeviceProperties,
    mem_per_block: int,
    reserved_cache_per_block: int = 0,
) -> int:
    """Max simultaneously-resident blocks given a per-block footprint.

    ``reserved_cache_per_block`` is the paper's ``M_reserved_per_block`` —
    extra shared memory intentionally left free per block as a runtime
    cache for high-dimensional datasets.
    """
    if mem_per_block <= 0:
        raise ValueError("mem_per_block must be positive")
    charge = mem_per_block + reserved_cache_per_block
    if charge > device.shared_mem_per_block_optin:
        return 0
    by_mem = device.shared_mem_per_sm // charge
    per_sm = min(device.max_blocks_per_sm, by_mem)
    return per_sm * device.num_sms


def can_cohabit(
    device: DeviceProperties,
    n_blocks: int,
    mem_per_block: int,
    reserved_cache_per_block: int = 0,
) -> bool:
    """True iff ``n_blocks`` persistent blocks can all be resident at once.

    This is the feasibility condition §IV-C states as
    ``N_parallel · slot ≤ N_SM · N_max_block_per_SM`` combined with the
    shared-memory constraint
    ``M_avail ≤ M_per_SM / N_block_per_SM − M_reserved``.
    """
    if n_blocks <= 0:
        return True
    return n_blocks <= max_resident_blocks(device, mem_per_block, reserved_cache_per_block)
