"""Simulated-GPU substrate: device model, cost model, event engine, PCIe."""

from .calibrate import CalibrationResult, calibrate_cost_params, op_count_features
from .costmodel import CostModel, CostParams, CTACost, StepCost, bitonic_stage_count
from .device import A100_SXM, DEVICE_PRESETS, RTX_3080, RTX_A6000, DeviceProperties
from .engine import BlockSchedule, Simulator, list_schedule
from .kernel import KernelLaunch, launch_blocks, partitioned_launch_makespan
from .memory import MemoryPlan, footprint_bytes, plan_memory
from .occupancy import (
    SearchMemoryLayout,
    block_shared_mem_bytes,
    can_cohabit,
    max_resident_blocks,
)
from .pcie import PCIeLink, PCIeStats
from .trace import CTATrace, QueryTrace, StepRecord

__all__ = [
    "CalibrationResult",
    "calibrate_cost_params",
    "op_count_features",
    "CostModel",
    "CostParams",
    "CTACost",
    "StepCost",
    "bitonic_stage_count",
    "A100_SXM",
    "DEVICE_PRESETS",
    "RTX_3080",
    "RTX_A6000",
    "DeviceProperties",
    "BlockSchedule",
    "Simulator",
    "list_schedule",
    "KernelLaunch",
    "launch_blocks",
    "partitioned_launch_makespan",
    "MemoryPlan",
    "footprint_bytes",
    "plan_memory",
    "SearchMemoryLayout",
    "block_shared_mem_bytes",
    "can_cohabit",
    "max_resident_blocks",
    "PCIeLink",
    "PCIeStats",
    "CTATrace",
    "QueryTrace",
    "StepRecord",
]
