"""PCIe link model.

The state-optimization experiment (§V-A, Fig. 9/18) is about *transaction
counts*: naive host polling issues a small PCIe read per slot per poll,
congesting the link that also carries query vectors and results.  We model
the link as a serial FIFO resource: each transaction occupies the bus for
``tx_overhead + bytes/bandwidth`` and completes ``wire latency`` later.
Statistics (transaction count, bytes, busy time) feed the Fig. 18 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceProperties

__all__ = ["PCIeLink", "PCIeStats"]


@dataclass
class PCIeStats:
    """Aggregate link statistics over a simulation."""

    transactions: int = 0
    bytes_moved: int = 0
    busy_us: float = 0.0
    #: transactions broken out by tag ("query", "result", "state", ...)
    by_tag: dict = field(default_factory=dict)
    #: time transactions spent waiting out injected stall windows (µs).
    stall_us: float = 0.0

    def utilization(self, horizon_us: float) -> float:
        """Fraction of the horizon the link was occupied."""
        if horizon_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / horizon_us)


class PCIeLink:
    """Serial FIFO PCIe link with per-transaction overhead.

    ``transfer(now, nbytes)`` returns the transaction's *completion time*
    and advances the internal busy horizon; callers use the returned time
    to schedule downstream events.  Deterministic and allocation-free per
    call, so millions of small state transactions stay cheap to simulate.
    """

    def __init__(
        self,
        device: DeviceProperties,
        tx_overhead_us: float = 0.25,
    ):
        self.lat_us = device.pcie_lat_us
        self.bw_bytes_per_us = device.pcie_bw_gbps * 1e3
        self.tx_overhead_us = tx_overhead_us
        self.busy_until = 0.0
        self.stats = PCIeStats()
        #: fault-injection hook: sorted (start, end) windows during which
        #: the link admits no new transactions (set by the resilience
        #: layer; empty for a healthy link).
        self.stall_windows: tuple[tuple[float, float], ...] = ()

    #: bus occupancy of a posted MMIO store (a single small TLP) — far
    #: cheaper than a DMA transaction, which pays engine-setup overhead.
    MMIO_OVERHEAD_US = 0.02

    def occupancy_us(self, nbytes: int, overhead_us: float | None = None) -> float:
        """Bus-occupancy time of a transaction of ``nbytes``."""
        oh = self.tx_overhead_us if overhead_us is None else overhead_us
        return oh + nbytes / self.bw_bytes_per_us

    def transfer(
        self,
        now: float,
        nbytes: int,
        tag: str = "data",
        overhead_us: float | None = None,
    ) -> float:
        """Issue a transaction at ``now``; return its completion time.

        ``overhead_us`` overrides the per-transaction setup cost; state
        words use :data:`MMIO_OVERHEAD_US` (posted stores), bulk copies the
        default DMA overhead.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = max(now, self.busy_until)
        for w_start, w_end in self.stall_windows:
            if w_start <= start < w_end:
                self.stats.stall_us += w_end - start
                start = w_end
        occ = self.occupancy_us(nbytes, overhead_us)
        self.busy_until = start + occ
        self.stats.transactions += 1
        self.stats.bytes_moved += nbytes
        self.stats.busy_us += occ
        self.stats.by_tag[tag] = self.stats.by_tag.get(tag, 0) + 1
        return self.busy_until + self.lat_us

    def reset(self) -> None:
        """Clear the busy horizon and statistics."""
        self.busy_until = 0.0
        self.stats = PCIeStats()
