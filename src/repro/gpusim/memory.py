"""Global-memory footprint accounting and Unified-Memory oversubscription.

§II-B of the paper: "NVIDIA's Unified Memory supports memory
over-subscription, enabling programs to operate beyond the GPU memory
limit."  Serving state must fit in device memory for full-speed search;
when the working set (base vectors + adjacency + per-slot state) exceeds
capacity, UM pages fault over PCIe and effective memory bandwidth
collapses for the spilled fraction.

This module computes the footprint of a serving configuration and derives
a derated effective bandwidth, which callers apply with
``device.with_overrides(global_mem_bw_gbps=plan.effective_bw_gbps)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceProperties

__all__ = ["MemoryPlan", "plan_memory", "footprint_bytes"]

GIB = 1024**3


def footprint_bytes(
    n_vectors: int,
    dim: int,
    n_edges: int,
    n_slots: int = 0,
    n_parallel: int = 1,
    k: int = 0,
) -> int:
    """Device-memory footprint of a graph-serving deployment.

    base vectors (float32) + CSR adjacency (int32 ids + int64 offsets) +
    per-slot visited bitmaps (one bit per vertex per in-flight query) +
    per-CTA result buffers (id+dist pairs).
    """
    if n_vectors <= 0 or dim <= 0:
        raise ValueError("n_vectors and dim must be positive")
    vectors = n_vectors * dim * 4
    adjacency = n_edges * 4 + (n_vectors + 1) * 8
    bitmaps = n_slots * ((n_vectors + 7) // 8)
    results = n_slots * n_parallel * k * 8
    return vectors + adjacency + bitmaps + results


@dataclass(frozen=True)
class MemoryPlan:
    """Outcome of a memory-capacity check."""

    total_bytes: int
    capacity_bytes: int
    #: fraction of the working set that spills past device memory (0 = fits)
    spill_fraction: float
    #: bandwidth after UM derating, GB/s
    effective_bw_gbps: float
    #: average global-memory latency after UM derating, SM cycles
    effective_latency_cycles: float = 400.0

    @property
    def fits(self) -> bool:
        return self.spill_fraction == 0.0

    @property
    def oversubscription(self) -> float:
        """working set / capacity (1.0 = exactly full)."""
        return self.total_bytes / self.capacity_bytes


def plan_memory(
    device: DeviceProperties,
    n_vectors: int,
    dim: int,
    n_edges: int,
    n_slots: int = 0,
    n_parallel: int = 1,
    k: int = 0,
    capacity_bytes: int | None = None,
    um_fault_bw_gbps: float | None = None,
    um_fault_latency_cycles: float = 4000.0,
) -> MemoryPlan:
    """Check a deployment against device memory and derate memory speed.

    The derating assumes uniformly-spread accesses: a fraction ``s`` of
    accesses fault to host memory, paying (amortized over a migrated page)
    ``um_fault_latency_cycles`` instead of the device latency, at roughly
    PCIe bandwidth:

        1 / bw_eff  = (1 - s) / bw_dev + s / bw_um
        lat_eff     = (1 - s) · lat_dev + s · lat_fault

    Both derate quickly — 10 % spill on an A6000 already costs most of the
    effective bandwidth, matching the cliff UM workloads observe.  Apply
    with ``device.with_overrides(global_mem_bw_gbps=plan.effective_bw_gbps,
    global_mem_latency_cycles=plan.effective_latency_cycles)``.
    """
    cap = capacity_bytes if capacity_bytes is not None else 48 * GIB
    if cap <= 0:
        raise ValueError("capacity must be positive")
    um_bw = um_fault_bw_gbps if um_fault_bw_gbps is not None else device.pcie_bw_gbps * 0.5
    total = footprint_bytes(n_vectors, dim, n_edges, n_slots, n_parallel, k)
    spill = max(0.0, 1.0 - cap / total) if total > cap else 0.0
    if spill == 0.0:
        bw = device.global_mem_bw_gbps
        lat = device.global_mem_latency_cycles
    else:
        bw = 1.0 / ((1.0 - spill) / device.global_mem_bw_gbps + spill / um_bw)
        lat = (1.0 - spill) * device.global_mem_latency_cycles + spill * um_fault_latency_cycles
    return MemoryPlan(
        total_bytes=total,
        capacity_bytes=cap,
        spill_fraction=spill,
        effective_bw_gbps=bw,
        effective_latency_cycles=lat,
    )
