"""Cost-model calibration against measured timings.

Users with access to a real GPU can calibrate the simulator: run a few
search configurations on hardware, record (trace, measured-microseconds)
pairs, and fit the per-op cycle constants so the priced traces match.

The model is linear in the five dominant cycle constants

    t(trace) ≈ Σ_ops  count_op(trace) · cycles_op / clock

so the fit is a non-negative least squares over the op-count matrix
(solved with projected ``numpy.linalg.lstsq`` — clip + refit, adequate for
this small well-conditioned system).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .costmodel import CostModel, CostParams
from .device import DeviceProperties
from .trace import CTATrace

__all__ = ["CalibrationResult", "op_count_features", "calibrate_cost_params"]

#: order of the fitted CostParams fields
_FIELDS = (
    "fma_iter_cycles",
    "shuffle_cycles",
    "cmpex_cycles",
    "scan_cycles",
    "bitmap_cycles",
)


def op_count_features(trace: CTATrace, threads: int = 32) -> np.ndarray:
    """Per-op *counts* (warp-wide groups) for one CTA trace.

    Columns follow ``_FIELDS``; multiplying by the matching cycle constants
    and the cycle time reproduces the deterministic part of
    :meth:`CostModel.cta_cost` (memory terms are excluded — they are device
    properties, not fitted constants).
    """
    import math

    from .costmodel import bitonic_merge_stage_count, bitonic_stage_count

    fma = shfl = cmpex = scan = bitmap = 0.0
    for s in trace.steps:
        if s.n_new_points:
            fma += -(-s.n_new_points * s.dim // threads)
            shfl += s.n_new_points * max(1, int(math.log2(threads)))
        if s.did_sort:
            expand_n = max(s.sort_size - s.cand_list_len, 0)
            if expand_n > 1:
                n = 1 << max(1, math.ceil(math.log2(expand_n)))
                cmpex += bitonic_stage_count(expand_n) * -(-(n // 2) // threads)
            if s.sort_size > 1:
                n = 1 << max(1, math.ceil(math.log2(s.sort_size)))
                cmpex += bitonic_merge_stage_count(s.sort_size) * -(-(n // 2) // threads)
        scan += -(-max(s.cand_list_len, 1) // threads) * s.n_expanded
        if s.n_visited_checks:
            bitmap += -(-s.n_visited_checks // threads)
    return np.array([fma, shfl, cmpex, scan, bitmap], dtype=np.float64)


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted constants plus fit quality."""

    params: CostParams
    residual_us_rms: float
    r_squared: float


def calibrate_cost_params(
    device: DeviceProperties,
    traces: list[CTATrace],
    measured_us: list[float],
    base_params: CostParams | None = None,
    threads: int | None = None,
) -> CalibrationResult:
    """Fit per-op cycle constants to measured CTA timings.

    ``measured_us[i]`` is the observed execution time of ``traces[i]`` on
    real hardware.  Memory-latency/bandwidth terms (device properties) are
    subtracted before fitting; fitted constants are clipped non-negative
    with one refit pass over the surviving columns.
    """
    if len(traces) != len(measured_us):
        raise ValueError("one measurement per trace required")
    if len(traces) < len(_FIELDS):
        raise ValueError(f"need at least {len(_FIELDS)} measurements")
    base = base_params or CostParams()
    thr = threads or device.warp_size
    X = np.stack([op_count_features(t, thr) for t in traces])
    # fixed (non-fitted) component: memory + per-step overheads
    zeroed = replace(
        base,
        fma_iter_cycles=0.0, shuffle_cycles=0.0, cmpex_cycles=0.0,
        scan_cycles=0.0, bitmap_cycles=0.0,
    )
    fixed_model = CostModel(device, zeroed, threads_per_cta=thr)
    fixed = np.array([fixed_model.cta_duration_us(t) for t in traces])
    y = np.asarray(measured_us, dtype=np.float64) - fixed
    cycle_us = 1.0 / (device.clock_ghz * 1e3)
    A = X * cycle_us

    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    if (coef < 0).any():  # clip-and-refit non-negativity pass
        keep = coef > 0
        coef = np.zeros_like(coef)
        if keep.any():
            sub, *_ = np.linalg.lstsq(A[:, keep], y, rcond=None)
            coef[keep] = np.clip(sub, 0.0, None)
    fitted = replace(base, **dict(zip(_FIELDS, coef.tolist())))

    pred = A @ coef + fixed
    resid = np.asarray(measured_us) - pred
    ss_res = float((resid**2).sum())
    ss_tot = float(((np.asarray(measured_us) - np.mean(measured_us)) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return CalibrationResult(
        params=fitted,
        residual_us_rms=float(np.sqrt((resid**2).mean())),
        r_squared=r2,
    )
