"""Kernel-launch model: grids of priced blocks on the simulated device.

Bridges the cost model (per-CTA durations) and the engine (wave scheduling):
a :class:`KernelLaunch` prices a launch of many CTAs honouring launch
overhead, residency limits from occupancy, and, for partitioned-kernel
ablations, repeated relaunches.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceProperties
from .engine import BlockSchedule, list_schedule
from .occupancy import max_resident_blocks

__all__ = ["KernelLaunch", "launch_blocks", "partitioned_launch_makespan"]


@dataclass(frozen=True)
class KernelLaunch:
    """A priced kernel launch."""

    schedule: BlockSchedule
    launch_overhead_us: float
    n_concurrent: int

    @property
    def end_us(self) -> float:
        return self.schedule.kernel_end_us

    @property
    def block_end_us(self) -> tuple[float, ...]:
        return self.schedule.end_us


def launch_blocks(
    device: DeviceProperties,
    durations_us: list[float],
    mem_per_block: int,
    t0: float = 0.0,
    reserved_cache_per_block: int = 0,
) -> KernelLaunch:
    """Launch a grid of blocks with the given durations at ``t0``.

    Residency (concurrent blocks) is bounded by both the per-SM block limit
    and the shared-memory footprint; blocks beyond residency run in later
    waves.  The launch overhead is paid once, up front.
    """
    n_concurrent = max_resident_blocks(device, mem_per_block, reserved_cache_per_block)
    if n_concurrent == 0:
        raise ValueError(
            f"block footprint {mem_per_block}B exceeds device shared-memory limits"
        )
    start = t0 + device.kernel_launch_us
    sched = list_schedule(durations_us, n_concurrent, t0=start)
    return KernelLaunch(sched, device.kernel_launch_us, n_concurrent)


def partitioned_launch_makespan(
    device: DeviceProperties,
    per_block_step_durations: list[list[float]],
    mem_per_block: int,
    steps_per_launch: int,
    reload_us: float,
    t0: float = 0.0,
) -> float:
    """Makespan of the *partitioned kernel* alternative to persistence.

    §IV-A discusses (and rejects) splitting the kernel: run a fixed number
    of steps, exit, let the host inspect slots, relaunch.  Each relaunch
    pays the launch overhead plus re-staging shared memory (``reload_us``).
    Used by the persistent-kernel ablation benchmark.
    """
    if steps_per_launch <= 0:
        raise ValueError("steps_per_launch must be positive")
    remaining = [list(steps) for steps in per_block_step_durations]
    n_concurrent = max_resident_blocks(device, mem_per_block)
    if n_concurrent == 0:
        raise ValueError("block footprint exceeds device limits")
    now = t0
    while any(remaining):
        chunk_durations = []
        for steps in remaining:
            take = steps[:steps_per_launch]
            del steps[:steps_per_launch]
            if take:
                chunk_durations.append(reload_us + sum(take))
        now += device.kernel_launch_us
        sched = list_schedule(chunk_durations, n_concurrent, t0=now)
        now = sched.kernel_end_us
    return now - t0
