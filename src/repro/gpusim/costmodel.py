"""Analytic cost model: op traces → time.

Prices a :class:`~repro.gpusim.trace.StepRecord` as the sum of five
components (matching the kernel phases in §IV-B of the paper):

``select``   scan the candidate list for the next unvisited candidate(s)
``fetch``    read adjacency lists from global memory
``filter``   probe/update the visited bitmap
``distance`` per-dimension FMAs distributed over the CTA's threads plus a
             warp-shuffle reduction per neighbour (Alg. 1 lines 10–13)
``sort``     bitonic sort of the expand list + bitonic merge into the
             candidate list (the maintenance the paper measures in Fig. 3)

Latencies are expressed in SM cycles and converted to microseconds with the
device clock.  The default constants are calibrated so that, at the paper's
operating points, sorting accounts for roughly 20–34 % of search time on the
low/medium-dimension datasets and proportionally less at 960 d — the ratios
Fig. 3 reports.  Absolute times are not calibrated to the A6000 (out of
scope per DESIGN.md); only the *composition* and *scaling* of the time are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceProperties
from .trace import CTATrace, QueryTrace, StepRecord

__all__ = ["CostParams", "StepCost", "CTACost", "CostModel", "bitonic_stage_count"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def bitonic_stage_count(n: int) -> int:
    """Compare-exchange stages of a full bitonic sort of ``n`` elements.

    ``n`` is rounded up to a power of two (GPU bitonic networks pad with
    sentinels).  A full sort of ``2^k`` items has ``k(k+1)/2`` stages.
    """
    if n <= 1:
        return 0
    k = max(1, math.ceil(math.log2(n)))
    return k * (k + 1) // 2


def bitonic_merge_stage_count(n: int) -> int:
    """Stages of a bitonic *merge* of two sorted runs totalling ``n`` items."""
    if n <= 1:
        return 0
    return max(1, math.ceil(math.log2(n)))


@dataclass(frozen=True)
class CostParams:
    """Per-operation cycle costs (tunable; defaults per module docstring)."""

    #: cycles per warp-wide distance iteration (32 loads + FMAs, pipelined)
    fma_iter_cycles: float = 8.0
    #: cycles per warp-shuffle step of the per-neighbour reduction
    shuffle_cycles: float = 2.0
    #: cycles per warp-wide bitonic compare-exchange group (shared memory
    #: load/store pair + compare + syncwarp)
    cmpex_cycles: float = 16.0
    #: cycles per warp-wide candidate-list scan iteration during selection
    scan_cycles: float = 8.0
    #: cycles per warp-wide visited-bitmap probe group (L2-cached global)
    bitmap_cycles: float = 30.0
    #: fixed per-step control overhead (loop, branches, syncs)
    step_fixed_cycles: float = 50.0
    #: CPU nanoseconds per heap operation in the host-side TopK merge
    #: (cache-hot small heaps on a modern core)
    cpu_heap_op_ns: float = 2.5
    #: CPU nanoseconds per element for result filtering/copy on the host
    cpu_filter_ns: float = 1.0
    #: cycles per element-move group in the GPU divide-and-conquer merge
    #: kernel (global-memory bound — this is why the paper offloads it)
    gpu_merge_elem_cycles: float = 60.0
    #: int8 MACs packed per lane-cycle in the quantized distance kernel
    #: (DP4A: one instruction multiply-accumulates 4 int8 pairs)
    int8_mac_pack: float = 4.0
    #: cycles per warp-wide PQ ADC table-lookup group (shared-memory gather
    #: — slower than an FMA group because lookups are bank-conflict prone,
    #: but each covers a whole subspace instead of one dimension)
    lut_lookup_cycles: float = 12.0
    #: CPU nanoseconds per dimension of a host-side float32 distance
    #: (SIMD FMA throughput on one core; the hybrid tier's refine walk)
    cpu_fma_ns: float = 0.05
    #: effective host memory bandwidth for streaming full-precision
    #: vectors during CPU refinement, GB/s — each fetch is a contiguous
    #: multi-KB row, so this sits near DDR5 sequential rates, still far
    #: below device HBM (which is exactly why the pilot stage runs on GPU)
    host_mem_bw_gbps: float = 40.0


@dataclass(frozen=True)
class StepCost:
    """Time breakdown of one step, microseconds."""

    select_us: float
    fetch_us: float
    filter_us: float
    distance_us: float
    sort_us: float

    @property
    def total_us(self) -> float:
        return self.select_us + self.fetch_us + self.filter_us + self.distance_us + self.sort_us


@dataclass(frozen=True)
class CTACost:
    """Aggregate cost of a CTA trace, microseconds."""

    select_us: float
    fetch_us: float
    filter_us: float
    distance_us: float
    sort_us: float
    result_write_us: float
    n_steps: int

    @property
    def compute_us(self) -> float:
        """Everything except sorting (the paper's "calculation" bucket)."""
        return (
            self.select_us
            + self.fetch_us
            + self.filter_us
            + self.distance_us
            + self.result_write_us
        )

    @property
    def total_us(self) -> float:
        return self.compute_us + self.sort_us

    @property
    def sort_fraction(self) -> float:
        """Share of time spent sorting (Fig. 3 / Fig. 17 quantity)."""
        t = self.total_us
        return self.sort_us / t if t > 0 else 0.0


class CostModel:
    """Prices traces on a given device with given per-op constants."""

    def __init__(
        self,
        device: DeviceProperties,
        params: CostParams | None = None,
        threads_per_cta: int | None = None,
    ):
        self.device = device
        self.params = params or CostParams()
        # Paper §IV-C: threads per block are set to the warp size.
        if threads_per_cta is not None and threads_per_cta <= 0:
            raise ValueError("threads_per_cta must be positive")
        self.threads = int(threads_per_cta if threads_per_cta else device.warp_size)
        self._us = device.cycles_to_us

    # ------------------------------------------------------------------ GPU
    def step_cost(self, step: StepRecord) -> StepCost:
        """Price a single search step."""
        p, t = self.params, self.threads
        select = self._us(
            _ceil_div(max(step.cand_list_len, 1), t) * p.scan_cycles * step.n_expanded
        )
        # Adjacency fetch: one global-memory round trip per expanded
        # candidate plus streaming the neighbour ids.
        fetch_bytes = step.n_neighbors_fetched * 4
        fetch = (
            step.n_expanded * self._us(self.device.global_mem_latency_cycles)
            + fetch_bytes / (self.device.global_mem_bw_gbps * 1e3)
        )
        filter_ = self._us(
            _ceil_div(max(step.n_visited_checks, 1), t) * p.bitmap_cycles
        ) if step.n_visited_checks else 0.0
        distance = 0.0
        if step.n_new_points:
            precision = getattr(step, "precision", "float32")
            reduce_steps = step.n_new_points * max(1, int(math.log2(t)))
            if precision == "int8":
                # DP4A packs int8_mac_pack MACs per lane-cycle and streams
                # 1 byte/dimension instead of 4.
                pack = max(int(p.int8_mac_pack), 1)
                iters = _ceil_div(step.n_new_points * step.dim, t * pack)
                lane_cycles = iters * p.fma_iter_cycles
                vec_bytes = step.n_new_points * step.dim * 1
            elif precision == "pq":
                # ADC: step.dim holds m — one shared-memory table lookup
                # per subspace per point, 1 byte/code streamed.
                iters = _ceil_div(step.n_new_points * step.dim, t)
                lane_cycles = iters * p.lut_lookup_cycles
                vec_bytes = step.n_new_points * step.dim * 1
            else:
                iters = _ceil_div(step.n_new_points * step.dim, t)
                lane_cycles = iters * p.fma_iter_cycles
                vec_bytes = step.n_new_points * step.dim * 4
            distance = self._us(
                lane_cycles + reduce_steps * p.shuffle_cycles
            ) + vec_bytes / (self.device.global_mem_bw_gbps * 1e3)
        sort = self.sort_cost_us(step) if step.did_sort else 0.0
        total_fixed = self._us(p.step_fixed_cycles)
        return StepCost(select + total_fixed, fetch, filter_, distance, sort)

    def sort_cost_us(self, step: StepRecord) -> float:
        """Bitonic sort of the expand list + merge into the candidate list."""
        p, t = self.params, self.threads
        expand_n = max(step.sort_size - step.cand_list_len, 0)
        cycles = 0.0
        if expand_n > 1:
            n = 1 << max(1, math.ceil(math.log2(expand_n)))
            cycles += bitonic_stage_count(expand_n) * _ceil_div(n // 2, t) * p.cmpex_cycles
        if step.sort_size > 1:
            n = 1 << max(1, math.ceil(math.log2(step.sort_size)))
            cycles += (
                bitonic_merge_stage_count(step.sort_size)
                * _ceil_div(n // 2, t)
                * p.cmpex_cycles
            )
        return self._us(cycles)

    def cta_cost(self, trace: CTATrace) -> CTACost:
        """Aggregate cost of everything a CTA did for one query."""
        sel = fet = fil = dis = srt = 0.0
        for s in trace.steps:
            c = self.step_cost(s)
            sel += c.select_us
            fet += c.fetch_us
            fil += c.filter_us
            dis += c.distance_us
            srt += c.sort_us
        write = 0.0
        if trace.result_len:
            write = self._us(self.device.global_mem_latency_cycles) + (
                trace.result_len * 8 / (self.device.global_mem_bw_gbps * 1e3)
            )
        return CTACost(sel, fet, fil, dis, srt, write, trace.n_steps)

    def cta_duration_us(self, trace: CTATrace) -> float:
        """Wall-clock a CTA is busy serving its share of one query."""
        return self.cta_cost(trace).total_us

    def step_durations_us(self, trace: CTATrace) -> list[float]:
        """Per-step durations (used by the partitioned-kernel ablation)."""
        return [self.step_cost(s).total_us for s in trace.steps]

    # ------------------------------------------------------------------ CPU
    def cpu_merge_us(self, n_lists: int, k: int) -> float:
        """Host-side priority-queue merge of ``n_lists`` sorted TopK lists.

        This is step ④ of the paper's search process (Result Merge&Filter).
        The k-way heap merge touches only the list heads plus the ``k``
        emitted elements — O(T + k·log T) operations, *not* O(T·k) — which
        is precisely why the CPU keeps up with the GPU (§IV-B).
        """
        if n_lists <= 1:
            return self.params.cpu_filter_ns * k * 1e-3
        ops = n_lists + k * (1 + math.log2(n_lists))
        return (ops * self.params.cpu_heap_op_ns + k * self.params.cpu_filter_ns) * 1e-3

    def cpu_refine_us(self, n_dists: int, dim: int, ef: int = 1) -> float:
        """Host-side bounded graph walk of the hybrid tier (stage 3).

        ``n_dists`` full-width float32 distances against host-resident
        vectors: each costs ``dim`` SIMD FMAs plus streaming ``4·dim``
        bytes from host memory (the dominant term at high dimension —
        random vector fetches run at DDR, not HBM, speed), and each scored
        point pays ~``log2(ef)`` heap operations to maintain the bounded
        candidate list.
        """
        if n_dists <= 0:
            return 0.0
        p = self.params
        bytes_ = n_dists * dim * 4
        heap_ops = n_dists * max(1.0, math.log2(max(ef, 2)))
        ns = (
            n_dists * dim * p.cpu_fma_ns
            + heap_ops * p.cpu_heap_op_ns
            + bytes_ / p.host_mem_bw_gbps
        )
        return ns * 1e-3

    # ---------------------------------------------------------- GPU (merge)
    def gpu_merge_us(self, n_lists: int, k: int) -> float:
        """Cross-CTA divide-and-conquer merge *on the GPU* (ablation).

        Models the baseline CAGRA behaviour the paper argues against: a
        separate merge pass over global memory where, per round, half the
        participating threads idle.  Includes the extra kernel launch that
        interrupts a persistent kernel.
        """
        if n_lists <= 1:
            return 0.0
        p, t = self.params, self.threads
        rounds = max(1, math.ceil(math.log2(n_lists)))
        cycles = 0.0
        active = n_lists
        for _ in range(rounds):
            pairs = _ceil_div(active, 2)
            cycles += _ceil_div(pairs * k, t) * p.gpu_merge_elem_cycles
            active = pairs
        return self.device.kernel_launch_us + self._us(cycles)

    # ------------------------------------------------------------- queries
    def query_gpu_time_us(self, qt: QueryTrace) -> float:
        """GPU time for one query = the slowest of its CTAs (they run
        concurrently on distinct blocks)."""
        return max((self.cta_duration_us(c) for c in qt.ctas), default=0.0)

    def query_cost_summary(self, qt: QueryTrace) -> CTACost:
        """Summed breakdown over all CTAs of a query (for Fig. 3/17)."""
        costs = [self.cta_cost(c) for c in qt.ctas]
        return CTACost(
            sum(c.select_us for c in costs),
            sum(c.fetch_us for c in costs),
            sum(c.filter_us for c in costs),
            sum(c.distance_us for c in costs),
            sum(c.sort_us for c in costs),
            sum(c.result_write_us for c in costs),
            sum(c.n_steps for c in costs),
        )
