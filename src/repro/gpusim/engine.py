"""Discrete-event simulation engine.

A minimal, deterministic event loop (time in microseconds, ties broken by
insertion order) plus a list scheduler used to model kernel-grid execution:
a launch of ``B`` blocks with known durations onto ``C`` concurrent block
slots — exactly how a GPU dispatches waves of CTAs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

__all__ = ["Simulator", "BlockSchedule", "list_schedule"]


class Simulator:
    """Deterministic discrete-event loop.

    Callbacks receive the simulator so they can schedule follow-on events.
    ``schedule`` accepts an absolute timestamp; ``after`` a relative delay.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[["Simulator"], None]]] = []
        self._seq = itertools.count()
        self._events_run = 0

    def schedule(self, when: float, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn`` at absolute time ``when`` (≥ now)."""
        if when < self.now - 1e-9:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        heapq.heappush(self._heap, (when, next(self._seq), fn))

    def after(self, delay: float, fn: Callable[["Simulator"], None]) -> None:
        """Schedule ``fn`` after a relative ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, fn)

    def run(self, until: float = float("inf"), max_events: int = 50_000_000) -> float:
        """Drain events until the queue empties or ``until`` is reached.

        Returns the final simulation time.  ``max_events`` guards against
        accidental live-lock (e.g. a polling loop that never terminates).
        """
        while self._heap:
            when, _, fn = self._heap[0]
            if when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            fn(self)
            self._events_run += 1
            if self._events_run > max_events:
                raise RuntimeError("event budget exhausted — runaway simulation?")
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)


@dataclass(frozen=True)
class BlockSchedule:
    """Result of scheduling one kernel grid."""

    start_us: tuple[float, ...]  # per-block start times
    end_us: tuple[float, ...]  # per-block end times
    kernel_end_us: float  # completion of the whole grid

    @property
    def makespan_us(self) -> float:
        return self.kernel_end_us


def list_schedule(
    durations_us: list[float],
    n_concurrent: int,
    t0: float = 0.0,
) -> BlockSchedule:
    """Greedy list scheduling of blocks onto concurrent block slots.

    Models the GPU's block dispatcher: blocks launch in index order, each
    starting on the earliest-free slot.  With ``B ≤ n_concurrent`` all
    blocks run in a single wave; otherwise later blocks queue — which is
    how large static batches stretch per-query latency (§I, §VI-C).
    """
    if n_concurrent <= 0:
        raise ValueError("n_concurrent must be positive")
    if any(d < 0 for d in durations_us):
        raise ValueError("durations must be non-negative")
    slots = [t0] * min(n_concurrent, max(len(durations_us), 1))
    heapq.heapify(slots)
    starts: list[float] = []
    ends: list[float] = []
    for d in durations_us:
        free_at = heapq.heappop(slots)
        start = max(free_at, t0)
        end = start + d
        starts.append(start)
        ends.append(end)
        heapq.heappush(slots, end)
    kernel_end = max(ends, default=t0)
    return BlockSchedule(tuple(starts), tuple(ends), kernel_end)
