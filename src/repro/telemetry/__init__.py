"""Serving observability: metrics registry, spans, exposition, hooks.

The telemetry subsystem instruments the query lifecycle end to end
(admission → slot occupancy → search → host merge → completion) without
touching the hot path by default — every component takes an optional
:class:`Telemetry` and falls back to the no-op :data:`NULL_TELEMETRY`.

Quick tour::

    from repro import ALGASSystem, ServeConfig, Telemetry

    tel = Telemetry()
    report = system.serve(queries, ServeConfig(telemetry=tel))
    print(tel.to_prometheus())         # Prometheus text exposition
    tel.to_json("metrics.json")        # JSON document (metrics + spans)
    print(tel.slot_timeline())         # ASCII per-slot occupancy

See docs/observability.md for the metric catalog and span lifecycle.
"""

from .exposition import (
    registry_to_dict,
    telemetry_document,
    to_prometheus_text,
    write_metrics,
)
from .hooks import NULL_TELEMETRY, NullTelemetry, Telemetry
from .registry import Buckets, Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, SpanLog

__all__ = [
    "Buckets",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanLog",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "registry_to_dict",
    "telemetry_document",
    "to_prometheus_text",
    "write_metrics",
]
