"""Structured span tracing of the query lifecycle.

A span is one named interval on the simulation clock, optionally pinned to
a query and/or a slot.  The serving engines emit a small fixed set per
query (see docs/observability.md for the lifecycle diagram):

``queue``  arrival → dispatch (admission + batch-accumulation wait)
``slot``   dispatch → results collected (slot occupancy, dynamic batching)
``search`` GPU start → this query's own CTAs finished
``merge``  host observed completion → merged/filtered results returned
``query``  arrival → completion (the whole lifecycle)

plus batch-level spans (``batch``, ``kernel``) from the static engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Span", "SpanLog"]


@dataclass
class Span:
    """One named interval (simulation microseconds)."""

    name: str
    start_us: float
    end_us: float
    query_id: int | None = None
    slot_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        d = {"name": self.name, "start_us": self.start_us, "end_us": self.end_us}
        if self.query_id is not None:
            d["query_id"] = self.query_id
        if self.slot_id is not None:
            d["slot_id"] = self.slot_id
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d


class SpanLog:
    """Append-only span collection with simple filtering."""

    def __init__(self):
        self.spans: list[Span] = []

    def record(
        self,
        name: str,
        start_us: float,
        end_us: float,
        query_id: int | None = None,
        slot_id: int | None = None,
        **attrs,
    ) -> Span:
        span = Span(name, float(start_us), float(end_us), query_id, slot_id, attrs)
        self.spans.append(span)
        return span

    def merge_from(self, other: "SpanLog") -> None:
        """Append another log's spans (the parallel fan-in: workers record
        into private logs, the parent concatenates them in shard order so
        the merged log matches a sequential run span for span)."""
        self.spans.extend(other.spans)

    def filter(
        self,
        name: str | None = None,
        query_id: int | None = None,
        slot_id: int | None = None,
    ) -> list[Span]:
        return [
            s
            for s in self.spans
            if (name is None or s.name == name)
            and (query_id is None or s.query_id == query_id)
            and (slot_id is None or s.slot_id == slot_id)
        ]

    def by_query(self, query_id: int) -> list[Span]:
        """All spans of one query, in start order."""
        return sorted(self.filter(query_id=query_id), key=lambda s: s.start_us)

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)
