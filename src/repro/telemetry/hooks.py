"""The `Telemetry` facade: instrumentation hooks for the serving stack.

Every instrumented component (:class:`~repro.core.query_manager.QueryManager`,
:class:`~repro.core.slots.Slot`, :class:`~repro.core.merge.HostMerger`, both
batching engines, the systems and cluster servers) takes an optional
``telemetry`` object and calls these hooks.  The default is
:data:`NULL_TELEMETRY`, whose hooks are all no-ops, so the hot path and the
existing benchmarks pay nothing unless observability is requested.

A telemetry object bundles a :class:`~repro.telemetry.registry.MetricsRegistry`
and a :class:`~repro.telemetry.spans.SpanLog`; ``scoped(**labels)`` returns a
view that shares both but stamps extra labels on every metric — the cluster
servers use this for per-shard/per-replica aggregation into one registry.

Metric catalog: see docs/observability.md (kept in sync with ``_CATALOG``).
"""

from __future__ import annotations

import json
import os

from .registry import Buckets, MetricsRegistry
from .spans import SpanLog

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]

#: depth buckets for the queue-depth distribution (0..2048, powers of two).
_DEPTH_BUCKETS = (0.0,) + Buckets.exponential(1.0, 2.0, 12)

#: the always-present metric families: (kind, name, help, histogram buckets)
_CATALOG: tuple[tuple[str, str, str, tuple | None], ...] = (
    ("counter", "algas_queries_submitted_total",
     "queries admitted to the serving queue", None),
    ("counter", "algas_queries_dispatched_total",
     "queries handed to a slot or batch", None),
    ("counter", "algas_queries_completed_total",
     "queries whose merged results were returned", None),
    ("counter", "algas_queries_dropped_total",
     "queries dropped past their deadline before dispatch", None),
    ("counter", "algas_queries_shed_total",
     "queries shed at admission by the queue-depth limit", None),
    ("gauge", "algas_queue_depth",
     "ready-queue depth (last sampled; high_water in JSON)", None),
    ("histogram", "algas_queue_depth_observed",
     "ready-queue depth sampled at each admission/dispatch", _DEPTH_BUCKETS),
    ("histogram", "algas_queue_wait_us",
     "arrival to dispatch wait per query (us)", Buckets.LATENCY_US),
    ("histogram", "algas_search_us",
     "GPU search time per query: first CTA start to last CTA end (us)",
     Buckets.LATENCY_US),
    ("histogram", "algas_host_merge_us",
     "host-side TopK merge cost per merge (us)", Buckets.LATENCY_US),
    ("histogram", "algas_service_latency_us",
     "dispatch to completion per query (us)", Buckets.LATENCY_US),
    ("histogram", "algas_e2e_latency_us",
     "arrival to completion per query (us)", Buckets.LATENCY_US),
    ("histogram", "algas_bubble_us",
     "per-query idle time between own GPU finish and return (us)",
     Buckets.LATENCY_US),
    # ---- resilience layer (docs/robustness.md) -------------------------
    ("counter", "algas_watchdog_kills_total",
     "slots force-retired by the no-progress watchdog", None),
    ("counter", "algas_query_retries_total",
     "queries re-dispatched after a watchdog kill", None),
    ("counter", "algas_retry_exhausted_total",
     "queries failed after exhausting their retry budget", None),
    ("counter", "algas_hedges_total",
     "hedge requests sent to a backup replica", None),
    ("counter", "algas_hedge_wins_total",
     "hedges that answered before (or instead of) the primary", None),
    ("counter", "algas_partial_answers_total",
     "queries answered from a shard quorum subset", None),
    ("counter", "algas_degraded_dispatches_total",
     "queries dispatched with degraded (shrunken) work under overload", None),
    ("counter", "algas_degraded_windows_total",
     "overload degradation windows entered", None),
    # ---- load / autoscaling layer (docs/load_testing.md) ---------------
    ("gauge", "algas_replicas_active",
     "replicas currently active in the fleet (autoscaler-controlled)", None),
    ("counter", "algas_scale_events_total",
     "autoscaler scale decisions applied (up or down)", None),
)


class Telemetry:
    """Live telemetry: a metrics registry + span log + lifecycle hooks."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        spans: SpanLog | None = None,
        labels: dict[str, str] | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanLog()
        self.labels = {k: str(v) for k, v in (labels or {}).items()}
        for kind, name, help, buckets in _CATALOG:
            if kind == "counter":
                self.registry.counter(name, help, **self.labels)
            elif kind == "gauge":
                self.registry.gauge(name, help, **self.labels)
            else:
                self.registry.histogram(name, help, buckets=buckets, **self.labels)

    def scoped(self, **labels: str) -> "Telemetry":
        """A view sharing this registry/span log with extra constant labels."""
        return Telemetry(self.registry, self.spans, {**self.labels, **labels})

    def merge_from(self, other: "Telemetry") -> None:
        """Fold a worker's telemetry (registry + spans) into this one.

        The parallel cluster serves hand each worker a *fresh* Telemetry
        scoped with its shard/replica label; merging them back in shard
        order reproduces exactly what sequential ``scoped()`` views would
        have written into the shared registry and span log.
        """
        if other is None or not other.enabled:
            return
        self.registry.merge_from(other.registry)
        self.spans.merge_from(other.spans)

    # ------------------------------------------------------ query lifecycle
    def query_submitted(self, n: int = 1) -> None:
        self.registry.counter("algas_queries_submitted_total", **self.labels).inc(n)

    def queue_depth(self, depth: int) -> None:
        self.registry.gauge("algas_queue_depth", **self.labels).set(depth)
        self.registry.histogram(
            "algas_queue_depth_observed", **self.labels
        ).observe(depth)

    def query_dispatched(self, query_id: int, arrival_us: float, dispatch_us: float) -> None:
        self.registry.counter("algas_queries_dispatched_total", **self.labels).inc()
        self.registry.histogram("algas_queue_wait_us", **self.labels).observe(
            max(0.0, dispatch_us - arrival_us)
        )
        self.spans.record("queue", arrival_us, dispatch_us, query_id=query_id,
                          **self.labels)

    def query_completed(self, record) -> None:
        """Observe a finished :class:`~repro.core.serving.QueryRecord`."""
        labels = self.labels
        reg = self.registry
        reg.counter("algas_queries_completed_total", **labels).inc()
        reg.histogram("algas_search_us", **labels).observe(
            max(0.0, record.gpu_end_us - record.gpu_start_us)
        )
        reg.histogram("algas_service_latency_us", **labels).observe(
            record.service_latency_us
        )
        reg.histogram("algas_e2e_latency_us", **labels).observe(record.e2e_latency_us)
        reg.histogram("algas_bubble_us", **labels).observe(record.bubble_us)
        qid = record.query_id
        self.spans.record("search", record.gpu_start_us, record.gpu_end_us,
                          query_id=qid, **labels)
        self.spans.record("merge", record.detected_us, record.complete_us,
                          query_id=qid, **labels)
        self.spans.record("query", record.arrival_us, record.complete_us,
                          query_id=qid, **labels)

    def query_dropped(
        self,
        query_id: int | None = None,
        arrival_us: float | None = None,
        deadline_us: float | None = None,
    ) -> None:
        self.registry.counter("algas_queries_dropped_total", **self.labels).inc()
        if query_id is not None and arrival_us is not None and deadline_us is not None:
            self.spans.record("dropped", arrival_us, deadline_us, query_id=query_id,
                              **self.labels)

    def query_shed(
        self,
        query_id: int | None = None,
        arrival_us: float | None = None,
        depth: int | None = None,
    ) -> None:
        """One arrival rejected by the queue-depth admission limit."""
        self.registry.counter("algas_queries_shed_total", **self.labels).inc()
        if query_id is not None and arrival_us is not None:
            self.spans.record("shed", arrival_us, arrival_us, query_id=query_id,
                              **self.labels)

    # ---------------------------------------------------------------- slots
    def slot_transition(self, slot_id: int, old, new) -> None:
        """One slot/CTA state transition (``old``/``new`` are SlotStates)."""
        self.registry.counter(
            "algas_slot_transitions_total",
            "slot state-machine transitions (per CTA for GPU-side FINISH)",
            **{"from": old.value, "to": new.value, **self.labels},
        ).inc()

    def slot_occupied(
        self, slot_id: int, start_us: float, end_us: float, query_id: int
    ) -> None:
        """One completed occupancy interval: dispatch → results collected."""
        slot = str(slot_id)
        self.registry.counter(
            "algas_slot_busy_us_total", "per-slot occupied time (us)",
            slot=slot, **self.labels,
        ).inc(max(0.0, end_us - start_us))
        self.registry.counter(
            "algas_slot_queries_total", "queries served per slot",
            slot=slot, **self.labels,
        ).inc()
        self.spans.record("slot", start_us, end_us, query_id=query_id,
                          slot_id=slot_id, **self.labels)

    # ----------------------------------------------------------- host merge
    def merge_observed(self, n_lists: int, cpu_us: float) -> None:
        self.registry.histogram("algas_host_merge_us", **self.labels).observe(cpu_us)

    # ----------------------------------------------------------- resilience
    def watchdog_kill(self, slot_id: int, query_id: int, now_us: float) -> None:
        """The watchdog force-retired ``slot_id`` holding ``query_id``."""
        self.registry.counter("algas_watchdog_kills_total", **self.labels).inc()
        self.spans.record("watchdog-kill", now_us, now_us, query_id=query_id,
                          slot_id=slot_id, **self.labels)

    def query_retried(self, query_id: int, attempt: int, now_us: float) -> None:
        self.registry.counter("algas_query_retries_total", **self.labels).inc()
        self.spans.record("retry", now_us, now_us, query_id=query_id,
                          attempt=str(attempt), **self.labels)

    def retry_exhausted(self, query_id: int) -> None:
        self.registry.counter("algas_retry_exhausted_total", **self.labels).inc()

    def hedge_fired(self, query_id: int, fire_us: float) -> None:
        self.registry.counter("algas_hedges_total", **self.labels).inc()
        self.spans.record("hedge", fire_us, fire_us, query_id=query_id,
                          **self.labels)

    def hedge_won(self, query_id: int) -> None:
        self.registry.counter("algas_hedge_wins_total", **self.labels).inc()

    def partial_answer(self, query_id: int, n_included: int, n_total: int) -> None:
        self.registry.counter("algas_partial_answers_total", **self.labels).inc()

    def degraded_dispatch(self, query_id: int) -> None:
        self.registry.counter(
            "algas_degraded_dispatches_total", **self.labels
        ).inc()

    def degraded_window_entered(self, now_us: float, depth: int) -> None:
        self.registry.counter("algas_degraded_windows_total", **self.labels).inc()

    def degraded_window_exited(self, start_us: float, end_us: float) -> None:
        self.spans.record("degraded", start_us, end_us, **self.labels)

    # --------------------------------------------------------- autoscaling
    def replicas_active(self, n: int) -> None:
        self.registry.gauge("algas_replicas_active", **self.labels).set(n)

    def scale_event(self, now_us: float, old: int, new: int, depth: float) -> None:
        """The autoscaler changed the fleet size from ``old`` to ``new``."""
        self.registry.counter("algas_scale_events_total", **self.labels).inc()
        self.registry.gauge("algas_replicas_active", **self.labels).set(new)
        self.spans.record(
            "scale-up" if new > old else "scale-down", now_us, now_us,
            **{"from": str(old), "to": str(new), **self.labels},
        )

    def fault_injected(self, kind: str) -> None:
        """One injected fault fired (labelled by kind, like transitions)."""
        self.registry.counter(
            "algas_faults_injected_total", "injected faults fired, by kind",
            kind=kind, **self.labels,
        ).inc()

    # ------------------------------------------------------- generic spans
    def span(self, name: str, start_us: float, end_us: float,
             query_id: int | None = None, slot_id: int | None = None,
             **attrs) -> None:
        self.spans.record(name, start_us, end_us, query_id=query_id,
                          slot_id=slot_id, **{**self.labels, **attrs})

    # ---------------------------------------------------------- serve level
    def observe_report(self, report, mode: str | None = None) -> None:
        """Record a finished serve's headline numbers as gauges."""
        labels = dict(self.labels)
        if mode is not None:
            labels["mode"] = mode
        reg = self.registry
        reg.gauge("algas_makespan_us", "makespan of the last serve (us)",
                  **labels).set(report.makespan_us)
        reg.gauge("algas_throughput_qps", "throughput of the last serve",
                  **labels).set(report.throughput_qps)
        reg.gauge("algas_gpu_utilization",
                  "busy fraction of reserved CTA contexts, last serve",
                  **labels).set(report.gpu_utilization)
        reg.gauge("algas_host_busy_us", "host thread busy time, last serve (us)",
                  **labels).set(report.host_busy_us)

    # ------------------------------------------------------------ exposition
    def to_dict(self, max_spans: int | None = None) -> dict:
        from .exposition import telemetry_document

        return telemetry_document(self, max_spans=max_spans)

    def to_json(self, path: str | os.PathLike | None = None,
                max_spans: int | None = 10_000) -> str:
        from .exposition import write_metrics

        text = json.dumps(self.to_dict(max_spans=max_spans), indent=2) + "\n"
        if path is not None:
            write_metrics(self, path, max_spans=max_spans)
        return text

    def to_prometheus(self) -> str:
        from .exposition import to_prometheus_text

        return to_prometheus_text(self.registry)

    def slot_timeline(self, width: int = 72, max_slots: int = 32) -> str:
        """ASCII per-slot occupancy timeline (see repro.analysis.timeline)."""
        from ..analysis.timeline import ascii_slot_timeline

        return ascii_slot_timeline(
            self.spans.filter(name="slot"), width=width, max_slots=max_slots
        )


class NullTelemetry(Telemetry):
    """No-op telemetry: every hook returns immediately.

    The default for every instrumented component — guarantees the hot path
    is unaffected when observability is off (the perf_smoke gate holds the
    engines to <5% overhead against the seed numbers).
    """

    enabled = False

    def __init__(self):
        # No registry, no spans: nothing is ever recorded.
        self.registry = None
        self.spans = None
        self.labels = {}

    def scoped(self, **labels) -> "NullTelemetry":
        return self

    def merge_from(self, other) -> None:
        pass

    def query_submitted(self, n: int = 1) -> None:
        pass

    def queue_depth(self, depth: int) -> None:
        pass

    def query_dispatched(self, query_id, arrival_us, dispatch_us) -> None:
        pass

    def query_completed(self, record) -> None:
        pass

    def query_dropped(self, query_id=None, arrival_us=None, deadline_us=None) -> None:
        pass

    def query_shed(self, query_id=None, arrival_us=None, depth=None) -> None:
        pass

    def replicas_active(self, n) -> None:
        pass

    def scale_event(self, now_us, old, new, depth) -> None:
        pass

    def slot_transition(self, slot_id, old, new) -> None:
        pass

    def slot_occupied(self, slot_id, start_us, end_us, query_id) -> None:
        pass

    def merge_observed(self, n_lists, cpu_us) -> None:
        pass

    def watchdog_kill(self, slot_id, query_id, now_us) -> None:
        pass

    def query_retried(self, query_id, attempt, now_us) -> None:
        pass

    def retry_exhausted(self, query_id) -> None:
        pass

    def hedge_fired(self, query_id, fire_us) -> None:
        pass

    def hedge_won(self, query_id) -> None:
        pass

    def partial_answer(self, query_id, n_included, n_total) -> None:
        pass

    def degraded_dispatch(self, query_id) -> None:
        pass

    def degraded_window_entered(self, now_us, depth) -> None:
        pass

    def degraded_window_exited(self, start_us, end_us) -> None:
        pass

    def fault_injected(self, kind) -> None:
        pass

    def span(self, name, start_us, end_us, query_id=None, slot_id=None, **attrs) -> None:
        pass

    def observe_report(self, report, mode=None) -> None:
        pass

    def to_dict(self, max_spans=None) -> dict:
        return {}

    def to_json(self, path=None, max_spans=10_000) -> str:
        return "{}"

    def to_prometheus(self) -> str:
        return ""

    def slot_timeline(self, width: int = 72, max_slots: int = 32) -> str:
        return "(telemetry disabled)"


#: shared no-op instance; components do ``tel = telemetry or NULL_TELEMETRY``.
NULL_TELEMETRY = NullTelemetry()
