"""Exposition formats: metrics registry → JSON document / Prometheus text.

Two consumers, two formats:

* **JSON** (``registry_to_dict`` / ``telemetry_document``) — the bench
  runners and ``python -m repro serve --metrics-out`` write this; it keeps
  full structure (bucket maps, label sets, span list, slot-occupancy
  summary).
* **Prometheus text format** (``to_prometheus_text``) — the standard
  ``# HELP`` / ``# TYPE`` line protocol, so the registry can be scraped or
  diffed with stock tooling.  Histograms expose cumulative ``_bucket``
  series plus ``_sum`` / ``_count``, counters a bare sample line.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "registry_to_dict",
    "telemetry_document",
    "to_prometheus_text",
    "write_metrics",
]


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = list(labels.items()) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def registry_to_dict(registry: MetricsRegistry) -> dict:
    """JSON-ready dict: one family entry per metric name."""
    families: dict[str, dict] = {}
    for name, kind, help, metrics in registry.collect():
        series = []
        for m in metrics:
            entry: dict = {"labels": dict(m.labels)}
            if isinstance(m, Counter):
                entry["value"] = m.value
            elif isinstance(m, Gauge):
                entry["value"] = m.value
                if m.high_water != -math.inf:
                    entry["high_water"] = m.high_water
            elif isinstance(m, Histogram):
                buckets = {_fmt(b): c for b, c in zip(m.bounds, m.cumulative())}
                buckets["+Inf"] = m.count
                entry.update(
                    {"buckets": buckets, "sum": m.sum, "count": m.count}
                )
            series.append(entry)
        families[name] = {"type": kind, "help": help, "series": series}
    return families


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help, metrics in registry.collect():
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")
        for m in metrics:
            if isinstance(m, Histogram):
                cum = m.cumulative()
                for bound, c in zip(m.bounds, cum):
                    le = _labels_text(m.labels, (("le", _fmt(bound)),))
                    lines.append(f"{name}_bucket{le} {c}")
                le = _labels_text(m.labels, (("le", "+Inf"),))
                lines.append(f"{name}_bucket{le} {m.count}")
                lines.append(f"{name}_sum{_labels_text(m.labels)} {_fmt(m.sum)}")
                lines.append(f"{name}_count{_labels_text(m.labels)} {m.count}")
            else:
                lines.append(f"{name}{_labels_text(m.labels)} {_fmt(m.value)}")
    return "\n".join(lines) + "\n"


def _slot_occupancy_summary(spans) -> dict:
    """Per-slot busy time / interval count from ``slot`` occupancy spans."""
    per_slot: dict[str, dict] = {}
    horizon = 0.0
    for s in spans:
        if s.name != "slot" or s.slot_id is None:
            continue
        entry = per_slot.setdefault(
            str(s.slot_id), {"busy_us": 0.0, "queries": 0}
        )
        entry["busy_us"] += s.duration_us
        entry["queries"] += 1
        horizon = max(horizon, s.end_us)
    for entry in per_slot.values():
        entry["utilization"] = entry["busy_us"] / horizon if horizon > 0 else 0.0
    return {"horizon_us": horizon, "slots": per_slot}


def telemetry_document(telemetry, max_spans: int | None = None) -> dict:
    """Full JSON document for one :class:`~repro.telemetry.hooks.Telemetry`.

    Contains the metric families, a slot-occupancy summary derived from the
    occupancy spans, and the span list (optionally truncated to
    ``max_spans``, earliest first, with the truncation recorded).
    """
    spans = list(telemetry.spans)
    doc: dict = {
        "metrics": registry_to_dict(telemetry.registry),
        "slot_occupancy": _slot_occupancy_summary(spans),
        "n_spans": len(spans),
    }
    if max_spans is not None and len(spans) > max_spans:
        doc["spans"] = [s.to_dict() for s in spans[:max_spans]]
        doc["spans_truncated"] = len(spans) - max_spans
    else:
        doc["spans"] = [s.to_dict() for s in spans]
    return doc


def write_metrics(telemetry, path: str | os.PathLike, max_spans: int | None = 10_000) -> Path:
    """Write the telemetry document to ``path``.

    The suffix picks the format: ``.prom`` / ``.txt`` → Prometheus text
    exposition of the registry, anything else → the JSON document.
    """
    path = Path(path)
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus_text(telemetry.registry))
    else:
        path.write_text(
            json.dumps(telemetry_document(telemetry, max_spans=max_spans), indent=2)
            + "\n"
        )
    return path
