"""Metric primitives: counters, gauges, histograms, and their registry.

The serving observability layer (docs/observability.md) needs three metric
kinds, matching the Prometheus data model so the exposition formats
(:mod:`repro.telemetry.exposition`) are standard:

* :class:`Counter` — monotonically increasing totals (queries dispatched,
  deadline drops, slot state transitions);
* :class:`Gauge` — last-written values with a high-water mark (queue
  depth, makespan, throughput of the most recent serve);
* :class:`Histogram` — bucketed distributions with configurable bucket
  schemes (per-phase latencies: queue wait, search, host merge).

A :class:`MetricsRegistry` owns every metric, deduplicated by
``(name, labels)``; families (all label variants of one name) share a type
and help string.  Everything is allocation-light plain Python — the hot
serving loops only touch these objects when telemetry is enabled.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left

__all__ = ["Buckets", "Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Buckets:
    """Bucket-scheme constructors for :class:`Histogram`.

    Bounds are *upper* bounds (Prometheus ``le`` semantics); an implicit
    ``+Inf`` bucket always terminates the scheme.
    """

    @staticmethod
    def linear(start: float, width: float, count: int) -> tuple[float, ...]:
        """``count`` buckets: start, start+width, ... (evenly spaced)."""
        if count <= 0 or width <= 0:
            raise ValueError("count and width must be positive")
        return tuple(start + i * width for i in range(count))

    @staticmethod
    def exponential(start: float, factor: float, count: int) -> tuple[float, ...]:
        """``count`` buckets: start, start*factor, ... (geometric)."""
        if count <= 0 or start <= 0 or factor <= 1.0:
            raise ValueError("need count > 0, start > 0, factor > 1")
        return tuple(start * factor**i for i in range(count))

    #: default scheme for microsecond latencies: 1 µs .. ~32 ms, power of 2.
    LATENCY_US: tuple[float, ...] = ()  # filled in below


Buckets.LATENCY_US = Buckets.exponential(1.0, 2.0, 16)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value, with a high-water mark for burst metrics."""

    __slots__ = ("name", "labels", "value", "high_water")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.high_water = -math.inf

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.high_water:
            self.high_water = self.value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram:
    """Bucketed distribution (upper-bound buckets + implicit ``+Inf``)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(self, name: str, labels: dict[str, str], bounds: tuple[float, ...]):
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def approx_quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper bound of the hit bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        for bound, cum in zip(self.bounds, self.cumulative()):
            if cum >= target:
                return bound
        return math.inf


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Owns all metrics, deduplicated by ``(name, labels)``.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling with
    the same name and labels returns the same object, so instrumentation
    sites never need to pre-declare metrics (though :class:`Telemetry
    <repro.telemetry.hooks.Telemetry>` pre-registers the core catalog so
    zero-valued metrics still appear in expositions).
    """

    def __init__(self):
        self._metrics: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}
        #: name -> (kind, help, extra) with extra = bucket bounds for histograms
        self._families: dict[str, tuple[str, str, tuple | None]] = {}

    # ------------------------------------------------------------ factories
    def _get(self, kind: str, name: str, help: str, labels: dict, extra=None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for k in labels:
            if not _LABEL_RE.match(k):
                raise ValueError(f"invalid label name {k!r}")
        labels = {k: str(v) for k, v in labels.items()}
        fam = self._families.get(name)
        if fam is None:
            self._families[name] = (kind, help, extra)
        else:
            if fam[0] != kind:
                raise ValueError(f"metric {name!r} already registered as {fam[0]}")
            if kind == "histogram" and extra is not None and fam[2] != extra:
                raise ValueError(f"histogram {name!r} re-registered with different buckets")
            if help and not fam[1]:
                self._families[name] = (kind, help, fam[2])
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if kind == "counter":
                metric = Counter(name, labels)
            elif kind == "gauge":
                metric = Gauge(name, labels)
            else:
                metric = Histogram(name, labels, self._families[name][2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        fam = self._families.get(name)
        bounds = tuple(buckets) if buckets is not None else (
            fam[2] if fam is not None else Buckets.LATENCY_US
        )
        return self._get("histogram", name, help, labels, extra=bounds)

    # ------------------------------------------------------------- merging
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        The parallel cluster fan-in (docs/performance.md): each worker
        serves its shard/replica into a *fresh* registry under disjoint
        ``shard``/``gpu`` labels, and the parent folds the workers back in
        label-scoped — counters add, histograms add bucket counts / sum /
        count, gauges take the source value and the max high-water mark.
        Zero-valued metrics are still created, so the merged exposition is
        identical to a sequential serve writing through ``scoped()`` views
        of one shared registry.
        """
        for name, (kind, help, extra) in other._families.items():
            fam = self._families.get(name)
            if fam is None:
                self._families[name] = (kind, help, extra)
            elif fam[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam[0]}"
                )
        for (name, _), m in other._metrics.items():
            kind, help, extra = other._families[name]
            labels = dict(m.labels)
            if kind == "counter":
                dst = self.counter(name, help, **labels)
                if m.value:
                    dst.inc(m.value)
            elif kind == "gauge":
                dst = self.gauge(name, help, **labels)
                if m.high_water != -math.inf:  # source gauge was ever set
                    dst.value = m.value
                    dst.high_water = max(dst.high_water, m.high_water)
            else:
                dst = self.histogram(name, help, buckets=m.bounds, **labels)
                if dst.bounds != m.bounds:
                    raise ValueError(
                        f"histogram {name!r} merge with different buckets"
                    )
                for i, c in enumerate(m.bucket_counts):
                    dst.bucket_counts[i] += c
                dst.sum += m.sum
                dst.count += m.count

    # ------------------------------------------------------------ iteration
    def collect(self):
        """Yield ``(name, kind, help, [metrics])`` sorted by name then labels."""
        by_name: dict[str, list] = {}
        for (name, _), metric in self._metrics.items():
            by_name.setdefault(name, []).append(metric)
        for name in sorted(by_name):
            kind, help, _ = self._families[name]
            metrics = sorted(by_name[name], key=lambda m: _label_key(m.labels))
            yield name, kind, help, metrics

    def get(self, name: str, **labels: str):
        """Fetch an existing metric or None (no create)."""
        return self._metrics.get((name, _label_key({k: str(v) for k, v in labels.items()})))

    def __len__(self) -> int:
        return len(self._metrics)
